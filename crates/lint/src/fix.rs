//! Mechanical fixes: removing rules the linter proves redundant.
//!
//! Two diagnostic codes are *mechanically* fixable — removing the flagged
//! rule provably never changes repair behaviour:
//!
//! * **ER003** (exact duplicate): the linter keeps the first occurrence
//!   unflagged and flags every later copy, so removing all flagged rules
//!   keeps exactly one of each duplicate group.
//! * **ER004** (dominated): a flagged rule is strictly dominated by another
//!   rule. Domination is a strict partial order (irreflexive, transitive),
//!   so the maximal rules of the set are never flagged and every removed
//!   rule keeps a dominator among the survivors — even when its recorded
//!   `related` dominator is itself removed, transitivity supplies a kept
//!   one.
//!
//! Everything else (dangling references, unsatisfiable patterns, repair
//! conflicts) needs a human decision and is left alone.

use crate::diag::{DiagnosticCode, Report};
use er_rules::PortableRule;

/// The result of applying the mechanical fixes.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The surviving rules, in their original order.
    pub kept: Vec<PortableRule>,
    /// Zero-based indices (into the original set) of the removed rules,
    /// ascending.
    pub removed: Vec<usize>,
}

/// Indices of rules a fix pass would remove: every rule flagged ER003 or
/// ER004, ascending and deduplicated.
pub fn removable(report: &Report) -> Vec<usize> {
    let mut indices: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| matches!(f.code, DiagnosticCode::Er003 | DiagnosticCode::Er004))
        .map(|f| f.rule)
        .collect();
    indices.sort_unstable();
    indices.dedup();
    indices
}

/// Apply the mechanical fixes for `report` to `rules` (the same set the
/// report was produced from).
pub fn apply_fixes(rules: &[PortableRule], report: &Report) -> FixOutcome {
    let removed = removable(report);
    let kept = rules
        .iter()
        .enumerate()
        .filter(|(i, _)| removed.binary_search(i).is_err())
        .map(|(_, r)| r.clone())
        .collect();
    FixOutcome { kept, removed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint_portable;
    use er_rules::{to_portable, EditingRule};

    fn portable(rules: &[EditingRule]) -> Vec<PortableRule> {
        let task = crate::doctest_task();
        rules.iter().map(|r| to_portable(r, &task, None)).collect()
    }

    #[test]
    fn duplicates_keep_their_first_occurrence() {
        let task = crate::doctest_task();
        let rule = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let rules = portable(&[rule.clone(), rule.clone(), rule]);
        let report = lint_portable(&rules, &task);
        let outcome = apply_fixes(&rules, &report);
        assert_eq!(outcome.removed, vec![1, 2]);
        assert_eq!(outcome.kept.len(), 1);
    }

    #[test]
    fn dominated_rules_are_removed_and_dominators_kept() {
        let task = crate::doctest_task();
        // (City) → Case dominates (City, Case) → Case-style wider LHS? The
        // doctest task has 2 attrs; use a pattern to create domination:
        // the unconditional rule dominates the pattern-restricted one.
        let base = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let narrow = EditingRule::new(
            vec![(0, 0)],
            (1, 1),
            vec![er_rules::Condition::eq(
                0,
                task.input().pool().intern(er_table::Value::str("HZ")),
            )],
        );
        let rules = portable(&[base, narrow]);
        let report = lint_portable(&rules, &task);
        let outcome = apply_fixes(&rules, &report);
        assert_eq!(outcome.removed, vec![1]);
        assert_eq!(outcome.kept.len(), 1);
    }

    #[test]
    fn clean_sets_are_untouched() {
        let task = crate::doctest_task();
        let rules = portable(&[EditingRule::new(vec![(0, 0)], (1, 1), vec![])]);
        let report = lint_portable(&rules, &task);
        let outcome = apply_fixes(&rules, &report);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.kept.len(), 1);
    }

    #[test]
    fn fixed_sets_relint_clean_of_er003_and_er004() {
        let task = crate::doctest_task();
        let base = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let narrow = EditingRule::new(
            vec![(0, 0)],
            (1, 1),
            vec![er_rules::Condition::eq(
                0,
                task.input().pool().intern(er_table::Value::str("HZ")),
            )],
        );
        let rules = portable(&[base.clone(), base.clone(), narrow, base]);
        let report = lint_portable(&rules, &task);
        let outcome = apply_fixes(&rules, &report);
        let again = lint_portable(&outcome.kept, &task);
        assert!(
            again
                .findings
                .iter()
                .all(|f| !matches!(f.code, DiagnosticCode::Er003 | DiagnosticCode::Er004)),
            "{again:?}"
        );
    }

    #[test]
    fn fixing_is_idempotent_byte_for_byte() {
        // Applying the fixes twice must be byte-identical to applying them
        // once: the first pass already removed every ER003/ER004 rule, so
        // the second pass is a no-op on the serialized document — the
        // invariant `lint --fix` relies on when run repeatedly in a
        // pipeline.
        let task = crate::doctest_task();
        let base = EditingRule::new(vec![(0, 0)], (1, 1), vec![]);
        let narrow = EditingRule::new(
            vec![(0, 0)],
            (1, 1),
            vec![er_rules::Condition::eq(
                0,
                task.input().pool().intern(er_table::Value::str("HZ")),
            )],
        );
        let rules = portable(&[base.clone(), narrow.clone(), base.clone(), base, narrow]);
        let report = lint_portable(&rules, &task);
        let once = apply_fixes(&rules, &report);
        assert!(!once.removed.is_empty(), "fixture must exercise removal");
        let report_again = lint_portable(&once.kept, &task);
        let twice = apply_fixes(&once.kept, &report_again);
        assert!(twice.removed.is_empty());
        let once_json = serde_json::to_string_pretty(&once.kept).unwrap();
        let twice_json = serde_json::to_string_pretty(&twice.kept).unwrap();
        assert_eq!(once_json, twice_json);
        // And the post-fix set is ER003/ER004-clean.
        assert!(
            report_again
                .findings
                .iter()
                .all(|f| !matches!(f.code, DiagnosticCode::Er003 | DiagnosticCode::Er004)),
            "{report_again:?}"
        );
    }

    #[test]
    fn non_mechanical_findings_are_left_alone() {
        let task = crate::doctest_task();
        // A dangling attribute (ER001) must not be auto-removed.
        let mut rules = portable(&[EditingRule::new(vec![(0, 0)], (1, 1), vec![])]);
        rules[0].lhs[0].0 = "Nope".to_string();
        let report = lint_portable(&rules, &task);
        assert!(report.errors() > 0);
        let outcome = apply_fixes(&rules, &report);
        assert!(outcome.removed.is_empty());
        assert_eq!(outcome.kept.len(), 1);
    }
}
