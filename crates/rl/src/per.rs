//! Prioritized experience replay (Schaul et al., 2016), proportional
//! variant.
//!
//! Rule discovery is a sparse-reward problem: most transitions carry the
//! −0.01 below-threshold penalty and a handful carry large utility rewards.
//! Uniform replay drowns the informative transitions; proportional PER
//! samples transitions with probability `p_i^α / Σ p^α` where `p_i` is the
//! last TD error, and corrects the induced bias with importance weights
//! `(N·P(i))^{-β}` annealed toward 1. A sum tree keeps sampling and
//! priority updates `O(log n)`.

use rand::rngs::StdRng;
use rand::Rng;

/// A fixed-capacity sum tree: leaves hold priorities, internal nodes hold
/// subtree sums, sampling walks down by prefix-sum.
#[derive(Debug, Clone)]
struct SumTree {
    /// Binary heap layout; `tree[0]` is the root sum. Leaves start at
    /// `capacity - 1`.
    tree: Vec<f64>,
    capacity: usize,
}

impl SumTree {
    fn new(capacity: usize) -> Self {
        SumTree {
            tree: vec![0.0; 2 * capacity - 1],
            capacity,
        }
    }

    fn total(&self) -> f64 {
        self.tree[0]
    }

    fn set(&mut self, leaf: usize, priority: f64) {
        debug_assert!(leaf < self.capacity);
        debug_assert!(priority >= 0.0);
        let mut idx = leaf + self.capacity - 1;
        let delta = priority - self.tree[idx];
        self.tree[idx] = priority;
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.tree[idx] += delta;
        }
    }

    fn get(&self, leaf: usize) -> f64 {
        self.tree[leaf + self.capacity - 1]
    }

    /// Find the leaf whose cumulative-priority interval contains `value`.
    fn find(&self, mut value: f64) -> usize {
        let mut idx = 0usize;
        while idx < self.capacity - 1 {
            let left = 2 * idx + 1;
            if value <= self.tree[left] || self.tree[left + 1] == 0.0 {
                idx = left;
            } else {
                value -= self.tree[left];
                idx = left + 1;
            }
        }
        idx - (self.capacity - 1)
    }
}

/// Prioritized replay buffer.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay<T> {
    items: Vec<T>,
    tree: SumTree,
    capacity: usize,
    next: usize,
    /// Priority exponent α (0 = uniform).
    pub alpha: f64,
    /// Importance-sampling exponent β (annealed toward 1 by the caller).
    pub beta: f64,
    /// Small constant keeping every priority positive.
    pub epsilon: f64,
    max_priority: f64,
}

impl<T> PrioritizedReplay<T> {
    /// Buffer of at most `capacity` transitions with the usual defaults
    /// (α = 0.6, β = 0.4).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        PrioritizedReplay {
            items: Vec::with_capacity(capacity.min(4096)),
            tree: SumTree::new(capacity),
            capacity,
            next: 0,
            alpha: 0.6,
            beta: 0.4,
            epsilon: 1e-3,
            max_priority: 1.0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Insert with maximal priority (new experience is always worth one
    /// look).
    pub fn push(&mut self, item: T) {
        let priority = self.max_priority.powf(self.alpha);
        if self.items.len() < self.capacity {
            let leaf = self.items.len();
            self.items.push(item);
            self.tree.set(leaf, priority);
        } else {
            self.items[self.next] = item;
            self.tree.set(self.next, priority);
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Sample `n` indices proportionally to priority. Returns
    /// `(index, importance_weight)` pairs; weights are normalized so the
    /// largest is 1.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<(usize, f32)> {
        assert!(!self.items.is_empty(), "cannot sample from an empty buffer");
        let total = self.tree.total().max(f64::MIN_POSITIVE);
        let len = self.items.len() as f64;
        let mut out = Vec::with_capacity(n);
        let mut max_w = 0.0f64;
        let mut raw = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.gen_range(0.0..total);
            let idx = self.tree.find(v).min(self.items.len() - 1);
            let p = self.tree.get(idx) / total;
            let w = (len * p.max(1e-12)).powf(-self.beta);
            max_w = max_w.max(w);
            raw.push((idx, w));
        }
        for (idx, w) in raw {
            out.push((idx, (w / max_w) as f32));
        }
        out
    }

    /// Access an item by index.
    pub fn get(&self, idx: usize) -> &T {
        &self.items[idx]
    }

    /// Update a sampled transition's priority from its new TD error.
    pub fn update_priority(&mut self, idx: usize, td_error: f64) {
        let p = td_error.abs() + self.epsilon;
        self.max_priority = self.max_priority.max(p);
        self.tree.set(idx, p.powf(self.alpha));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sum_tree_totals_and_find() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        assert!((t.total() - 10.0).abs() < 1e-12);
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 1);
        assert_eq!(t.find(3.5), 2);
        assert_eq!(t.find(9.5), 3);
        t.set(1, 0.0);
        assert!((t.total() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn push_and_wrap() {
        let mut rb = PrioritizedReplay::new(3);
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.len(), 3);
        // Contents are {3, 4, 2} (ring), all reachable via sampling.
        let mut rng = StdRng::seed_from_u64(1);
        let seen: std::collections::HashSet<i32> = rb
            .sample(200, &mut rng)
            .into_iter()
            .map(|(i, _)| *rb.get(i))
            .collect();
        assert!(seen.contains(&2) && seen.contains(&3) && seen.contains(&4));
    }

    #[test]
    fn high_priority_items_sampled_more() {
        let mut rb = PrioritizedReplay::new(8);
        for i in 0..8 {
            rb.push(i);
        }
        // Give item 5 a huge TD error, others tiny.
        for i in 0..8 {
            rb.update_priority(i, if i == 5 { 10.0 } else { 0.01 });
        }
        let mut rng = StdRng::seed_from_u64(2);
        let samples = rb.sample(1000, &mut rng);
        let hits5 = samples.iter().filter(|(i, _)| *i == 5).count();
        assert!(hits5 > 500, "item 5 sampled {hits5}/1000");
    }

    #[test]
    fn importance_weights_compensate() {
        let mut rb = PrioritizedReplay::new(4);
        for i in 0..4 {
            rb.push(i);
        }
        rb.update_priority(0, 5.0);
        rb.update_priority(1, 0.01);
        rb.update_priority(2, 0.01);
        rb.update_priority(3, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = rb.sample(500, &mut rng);
        // The over-sampled item gets the *smallest* weight.
        let w0: f32 = samples
            .iter()
            .filter(|(i, _)| *i == 0)
            .map(|(_, w)| *w)
            .fold(f32::MAX, f32::min);
        let w_rest: f32 = samples
            .iter()
            .filter(|(i, _)| *i != 0)
            .map(|(_, w)| *w)
            .fold(0.0, f32::max);
        assert!(w0 < w_rest, "w0 {w0} vs rest {w_rest}");
        // All weights in (0, 1].
        assert!(samples.iter().all(|(_, w)| *w > 0.0 && *w <= 1.0));
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let mut rb = PrioritizedReplay::new(4);
        rb.alpha = 0.0;
        for i in 0..4 {
            rb.push(i);
        }
        for i in 0..4 {
            rb.update_priority(i, (i as f64 + 1.0) * 10.0);
        }
        let mut rng = StdRng::seed_from_u64(4);
        let samples = rb.sample(2000, &mut rng);
        let mut counts = [0usize; 4];
        for (i, _) in samples {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 500.0).abs() < 150.0, "{counts:?}");
        }
    }
}
