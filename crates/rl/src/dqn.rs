//! Deep Q-Network with action masking.
//!
//! A faithful, small DQN (Mnih et al. 2013): ε-greedy behaviour policy,
//! uniform experience replay, a periodically-synced target network, and
//! Huber-loss TD updates. The distinguishing feature needed by RLMiner is
//! that *both* action selection and bootstrapping respect a boolean action
//! mask: the masked value network of §IV-C assigns `-∞` logits to forbidden
//! actions, which here is implemented by restricting the arg-max/max to the
//! allowed set.

use crate::nn::Mlp;
use crate::optim::Adam;
use crate::per::PrioritizedReplay;
use crate::replay::ReplayBuffer;
use crate::tensor::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One environment transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State the action was taken in.
    pub state: Vec<f32>,
    /// Index of the action taken.
    pub action: usize,
    /// Immediate reward.
    pub reward: f32,
    /// Next state and its action mask; `None` when the episode terminated.
    pub next: Option<(Vec<f32>, Vec<bool>)>,
}

/// DQN hyperparameters.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// State vector length.
    pub state_dim: usize,
    /// Number of actions.
    pub action_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Initial exploration rate.
    pub epsilon_start: f32,
    /// Final exploration rate.
    pub epsilon_end: f32,
    /// Environment steps over which ε anneals linearly.
    pub epsilon_decay_steps: usize,
    /// Batch size per learn step.
    pub batch_size: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Learn steps between target-network syncs.
    pub target_sync_every: usize,
    /// Minimum transitions in the replay buffer before learning starts.
    pub learn_start: usize,
    /// Use Double DQN bootstrapping (van Hasselt et al.): the online network
    /// picks the next action, the target network scores it — reduces the
    /// max-operator's overestimation bias.
    pub double_dqn: bool,
    /// Use proportional prioritized experience replay (Schaul et al.) —
    /// valuable for sparse-reward problems like rule discovery, where most
    /// transitions carry the small below-threshold penalty.
    pub prioritized_replay: bool,
    /// RNG seed.
    pub seed: u64,
}

impl DqnConfig {
    /// Reasonable defaults for small discrete problems.
    pub fn new(state_dim: usize, action_dim: usize) -> Self {
        DqnConfig {
            state_dim,
            action_dim,
            hidden: vec![128, 128],
            lr: 1e-3,
            gamma: 0.95,
            epsilon_start: 1.0,
            epsilon_end: 0.05,
            epsilon_decay_steps: 2000,
            batch_size: 32,
            replay_capacity: 10_000,
            target_sync_every: 100,
            learn_start: 64,
            double_dqn: false,
            prioritized_replay: false,
            seed: 0,
        }
    }
}

enum Replay {
    Uniform(ReplayBuffer<Transition>),
    Prioritized(PrioritizedReplay<Transition>),
}

impl Replay {
    fn len(&self) -> usize {
        match self {
            Replay::Uniform(r) => r.len(),
            Replay::Prioritized(r) => r.len(),
        }
    }

    fn push(&mut self, t: Transition) {
        match self {
            Replay::Uniform(r) => r.push(t),
            Replay::Prioritized(r) => r.push(t),
        }
    }
}

/// A DQN agent with masked action selection.
pub struct DqnAgent {
    config: DqnConfig,
    online: Mlp,
    target: Mlp,
    adam: Adam,
    replay: Replay,
    rng: StdRng,
    env_steps: usize,
    learn_steps: usize,
}

impl DqnAgent {
    /// Build an agent from `config`.
    pub fn new(config: DqnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dims = vec![config.state_dim];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.action_dim);
        let online = Mlp::new(&dims, &mut rng);
        let mut target = Mlp::new(&dims, &mut rng);
        target.copy_params_from(&online);
        let adam = Adam::new(config.lr);
        let replay = if config.prioritized_replay {
            Replay::Prioritized(PrioritizedReplay::new(config.replay_capacity))
        } else {
            Replay::Uniform(ReplayBuffer::new(config.replay_capacity))
        };
        DqnAgent {
            config,
            online,
            target,
            adam,
            replay,
            rng,
            env_steps: 0,
            learn_steps: 0,
        }
    }

    /// Current exploration rate (linear anneal by environment steps).
    pub fn epsilon(&self) -> f32 {
        let c = &self.config;
        if self.env_steps >= c.epsilon_decay_steps {
            return c.epsilon_end;
        }
        let frac = self.env_steps as f32 / c.epsilon_decay_steps as f32;
        c.epsilon_start + (c.epsilon_end - c.epsilon_start) * frac
    }

    /// Online-network Q-values for a state.
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        self.online.forward(&Mat::row_vector(state)).data().to_vec()
    }

    /// ε-greedy action among the allowed (`mask[a] == true`) actions,
    /// advancing the exploration schedule.
    ///
    /// # Panics
    /// Panics if no action is allowed.
    pub fn select_action(&mut self, state: &[f32], mask: &[bool]) -> usize {
        self.env_steps += 1;
        let eps = self.epsilon();
        if self.rng.gen_range(0.0..1.0) < eps {
            let allowed: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i)
                .collect();
            assert!(!allowed.is_empty(), "no allowed action");
            allowed[self.rng.gen_range(0..allowed.len())]
        } else {
            self.greedy_action(state, mask)
        }
    }

    /// Purely greedy masked action (inference policy).
    ///
    /// # Panics
    /// Panics if no action is allowed.
    pub fn greedy_action(&self, state: &[f32], mask: &[bool]) -> usize {
        let q = self.q_values(state);
        // Invariant: the environment's mask always leaves the stop action
        // allowed (Algorithm 1, line 1), so an argmax exists.
        #[allow(clippy::expect_used)]
        masked_argmax(&q, mask).expect("no allowed action")
    }

    /// Store a transition in the replay buffer.
    pub fn observe(&mut self, t: Transition) {
        debug_assert_eq!(t.state.len(), self.config.state_dim);
        self.replay.push(t);
    }

    /// One TD learning step (a minibatch). Returns the batch Huber loss, or
    /// `None` while the buffer is warming up.
    pub fn learn(&mut self) -> Option<f32> {
        if self.replay.len() < self.config.learn_start.max(self.config.batch_size) {
            return None;
        }
        let bs = self.config.batch_size;
        // Sample the batch (with importance weights and indices under PER).
        let (batch, weights, indices): (Vec<Transition>, Vec<f32>, Option<Vec<usize>>) =
            match &mut self.replay {
                Replay::Uniform(r) => {
                    let b: Vec<Transition> =
                        r.sample(bs, &mut self.rng).into_iter().cloned().collect();
                    (b, vec![1.0; bs], None)
                }
                Replay::Prioritized(r) => {
                    // Anneal β toward 1 over the ε-decay horizon.
                    let frac = (self.learn_steps as f64
                        / self.config.epsilon_decay_steps.max(1) as f64)
                        .min(1.0);
                    r.beta = 0.4 + 0.6 * frac;
                    let picks = r.sample(bs, &mut self.rng);
                    let b = picks.iter().map(|&(i, _)| r.get(i).clone()).collect();
                    let w = picks.iter().map(|&(_, w)| w).collect();
                    let idx = picks.iter().map(|&(i, _)| i).collect();
                    (b, w, Some(idx))
                }
            };

        // Q(s, ·) for the batch.
        let mut states = Mat::zeros(bs, self.config.state_dim);
        for (i, t) in batch.iter().enumerate() {
            for (j, &v) in t.state.iter().enumerate() {
                states.set(i, j, v);
            }
        }
        self.online.zero_grad();
        let q = self.online.forward_train(&states);

        // Bootstrapped targets from the target network, masked.
        let gamma = self.config.gamma;
        let double = self.config.double_dqn;
        let mut targets = vec![0.0f32; bs];
        for (i, t) in batch.iter().enumerate() {
            targets[i] = t.reward
                + match &t.next {
                    None => 0.0,
                    Some((ns, mask)) => {
                        let qn = self.target.forward(&Mat::row_vector(ns));
                        let bootstrap = if double {
                            // Online net selects, target net evaluates.
                            let qo = self.online.forward(&Mat::row_vector(ns));
                            masked_argmax(qo.row(0), mask)
                                .map(|a| qn.row(0)[a])
                                .unwrap_or(0.0)
                        } else {
                            masked_max(qn.row(0), mask).unwrap_or(0.0)
                        };
                        gamma * bootstrap
                    }
                };
        }

        // Huber loss on the taken actions only (importance-weighted under
        // PER), and refreshed priorities from the new TD errors.
        let mut grad = Mat::zeros(bs, self.config.action_dim);
        let mut loss = 0.0f32;
        let mut td_errors = Vec::with_capacity(bs);
        for (i, t) in batch.iter().enumerate() {
            let diff = q.get(i, t.action) - targets[i];
            td_errors.push(diff);
            let w = weights[i];
            loss += w * if diff.abs() <= 1.0 {
                0.5 * diff * diff
            } else {
                diff.abs() - 0.5
            };
            grad.set(i, t.action, w * diff.clamp(-1.0, 1.0) / bs as f32);
        }
        self.online.backward(&grad);
        self.adam.step(&mut self.online);
        if let (Replay::Prioritized(r), Some(indices)) = (&mut self.replay, indices) {
            for (&idx, &err) in indices.iter().zip(&td_errors) {
                r.update_priority(idx, err as f64);
            }
        }

        self.learn_steps += 1;
        if self
            .learn_steps
            .is_multiple_of(self.config.target_sync_every)
        {
            self.target.copy_params_from(&self.online);
        }
        Some(loss / bs as f32)
    }

    /// Environment steps taken (drives the ε schedule).
    pub fn env_steps(&self) -> usize {
        self.env_steps
    }

    /// Learn steps taken.
    pub fn learn_steps(&self) -> usize {
        self.learn_steps
    }

    /// Replay buffer occupancy.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Freeze exploration (sets ε to its final value immediately) — used
    /// when switching to the inference phase.
    pub fn freeze_exploration(&mut self) {
        self.env_steps = self.env_steps.max(self.config.epsilon_decay_steps);
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// A copy of the online value network (for persistence).
    pub fn export_network(&self) -> Mlp {
        self.online.clone()
    }

    /// Replace the online (and target) network parameters with `net`'s.
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn import_network(&mut self, net: &Mlp) {
        self.online.copy_params_from(net);
        self.target.copy_params_from(net);
    }
}

/// Arg-max over allowed actions; `None` if none allowed.
pub fn masked_argmax(q: &[f32], mask: &[bool]) -> Option<usize> {
    debug_assert_eq!(q.len(), mask.len());
    let mut best: Option<(usize, f32)> = None;
    for (i, (&v, &m)) in q.iter().zip(mask).enumerate() {
        if m && best.is_none_or(|(_, bv)| v > bv) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

/// Max over allowed actions; `None` if none allowed.
pub fn masked_max(q: &[f32], mask: &[bool]) -> Option<f32> {
    masked_argmax(q, mask).map(|i| q[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_argmax_respects_mask() {
        let q = [5.0, 9.0, 1.0];
        assert_eq!(masked_argmax(&q, &[true, true, true]), Some(1));
        assert_eq!(masked_argmax(&q, &[true, false, true]), Some(0));
        assert_eq!(masked_argmax(&q, &[false, false, true]), Some(2));
        assert_eq!(masked_argmax(&q, &[false, false, false]), None);
    }

    #[test]
    fn select_action_never_picks_masked() {
        let mut agent = DqnAgent::new(DqnConfig::new(2, 3));
        let mask = [false, true, false];
        for _ in 0..200 {
            assert_eq!(agent.select_action(&[0.0, 1.0], &mask), 1);
        }
    }

    #[test]
    fn epsilon_anneals_linearly() {
        let mut cfg = DqnConfig::new(1, 2);
        cfg.epsilon_decay_steps = 100;
        let mut agent = DqnAgent::new(cfg);
        let e0 = agent.epsilon();
        for _ in 0..50 {
            agent.select_action(&[0.0], &[true, true]);
        }
        let e50 = agent.epsilon();
        for _ in 0..100 {
            agent.select_action(&[0.0], &[true, true]);
        }
        let e_end = agent.epsilon();
        assert!(e0 > e50);
        assert!(e50 > e_end);
        assert!((e_end - 0.05).abs() < 1e-6);
    }

    /// A 5-state corridor: start at 0, action 1 moves right, action 0 moves
    /// left; reaching state 4 pays +1 and terminates. DQN must learn to
    /// always move right.
    #[test]
    fn learns_corridor_policy() {
        let n = 5usize;
        let encode = |s: usize| {
            let mut v = vec![0.0f32; n];
            v[s] = 1.0;
            v
        };
        let mut cfg = DqnConfig::new(n, 2);
        cfg.hidden = vec![32];
        cfg.epsilon_decay_steps = 1500;
        cfg.lr = 5e-3;
        cfg.seed = 42;
        cfg.target_sync_every = 50;
        let mut agent = DqnAgent::new(cfg);
        let mask = vec![true, true];
        for _ in 0..300 {
            let mut s = 0usize;
            for _ in 0..30 {
                let a = agent.select_action(&encode(s), &mask);
                let ns = if a == 1 { s + 1 } else { s.saturating_sub(1) };
                let done = ns == n - 1;
                let reward = if done { 1.0 } else { -0.01 };
                agent.observe(Transition {
                    state: encode(s),
                    action: a,
                    reward,
                    next: if done {
                        None
                    } else {
                        Some((encode(ns), mask.clone()))
                    },
                });
                agent.learn();
                if done {
                    break;
                }
                s = ns;
            }
        }
        agent.freeze_exploration();
        for s in 0..n - 1 {
            assert_eq!(
                agent.greedy_action(&encode(s), &mask),
                1,
                "state {s} should go right"
            );
        }
    }

    #[test]
    fn double_dqn_learns_corridor_too() {
        let n = 5usize;
        let encode = |s: usize| {
            let mut v = vec![0.0f32; n];
            v[s] = 1.0;
            v
        };
        let mut cfg = DqnConfig::new(n, 2);
        cfg.hidden = vec![32];
        cfg.epsilon_decay_steps = 1500;
        cfg.lr = 5e-3;
        cfg.seed = 42;
        cfg.target_sync_every = 50;
        cfg.double_dqn = true;
        let mut agent = DqnAgent::new(cfg);
        let mask = vec![true, true];
        for _ in 0..300 {
            let mut s = 0usize;
            for _ in 0..30 {
                let a = agent.select_action(&encode(s), &mask);
                let ns = if a == 1 { s + 1 } else { s.saturating_sub(1) };
                let done = ns == n - 1;
                let reward = if done { 1.0 } else { -0.01 };
                agent.observe(Transition {
                    state: encode(s),
                    action: a,
                    reward,
                    next: if done {
                        None
                    } else {
                        Some((encode(ns), mask.clone()))
                    },
                });
                agent.learn();
                if done {
                    break;
                }
                s = ns;
            }
        }
        agent.freeze_exploration();
        for s in 0..n - 1 {
            assert_eq!(
                agent.greedy_action(&encode(s), &mask),
                1,
                "state {s} should go right"
            );
        }
    }

    #[test]
    fn learn_waits_for_warmup() {
        let mut agent = DqnAgent::new(DqnConfig::new(2, 2));
        assert!(agent.learn().is_none());
        for _ in 0..100 {
            agent.observe(Transition {
                state: vec![0.0, 1.0],
                action: 0,
                reward: 1.0,
                next: None,
            });
        }
        assert!(agent.learn().is_some());
        assert_eq!(agent.learn_steps(), 1);
    }

    #[test]
    fn deterministic_runs_with_same_seed() {
        let run = || {
            let mut cfg = DqnConfig::new(3, 2);
            cfg.seed = 9;
            let mut agent = DqnAgent::new(cfg);
            let mask = vec![true, true];
            let mut actions = Vec::new();
            for i in 0..50 {
                let s = vec![i as f32 / 50.0, 0.0, 1.0];
                let a = agent.select_action(&s, &mask);
                actions.push(a);
                agent.observe(Transition {
                    state: s,
                    action: a,
                    reward: a as f32,
                    next: None,
                });
                agent.learn();
            }
            actions
        };
        assert_eq!(run(), run());
    }
}
