#![forbid(unsafe_code)]
//! # er-rl — a minimal deep-RL substrate
//!
//! The Rust deep-RL ecosystem is thin, and RLMiner needs only a small, fully
//! deterministic slice of it: a feed-forward value network, an optimizer, a
//! replay buffer, and a DQN loop with *action masking*. This crate implements
//! that slice from scratch:
//!
//! * [`tensor::Mat`] — a dense row-major `f32` matrix with the handful of
//!   ops an MLP needs.
//! * [`nn::Mlp`] — a multi-layer perceptron with ReLU hidden activations,
//!   manual backpropagation, and He initialization.
//! * [`optim::Adam`] — the Adam optimizer (Kingma & Ba) over the MLP's
//!   parameter tensors.
//! * [`replay::ReplayBuffer`] — a fixed-capacity ring buffer with uniform
//!   sampling.
//! * [`dqn::DqnAgent`] — DQN (Mnih et al. 2013) with a target network,
//!   ε-greedy exploration, Huber loss, and mask-aware action selection and
//!   bootstrapping — the paper's masked value network (§IV-C) plugs its rule
//!   mask straight into [`dqn::DqnAgent::select_action`].
//!
//! Everything is seeded: two runs with the same seed take identical actions.

pub mod dqn;
pub mod nn;
pub mod optim;
pub mod per;
pub mod replay;
pub mod tensor;

pub use dqn::{DqnAgent, DqnConfig, Transition};
pub use nn::Mlp;
pub use optim::Adam;
pub use per::PrioritizedReplay;
pub use replay::ReplayBuffer;
pub use tensor::Mat;
