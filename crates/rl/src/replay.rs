//! Fixed-capacity experience replay buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// A ring buffer of transitions with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    buf: Vec<T>,
    capacity: usize,
    next: usize,
}

impl<T> ReplayBuffer<T> {
    /// Buffer holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            next: 0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Insert an item, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Sample `n` items uniformly with replacement.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut StdRng) -> Vec<&'a T> {
        assert!(!self.buf.is_empty(), "cannot sample from an empty buffer");
        (0..n)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fills_then_wraps() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.len(), 3);
        // 0 and 1 evicted.
        let mut rng = StdRng::seed_from_u64(1);
        let sampled: Vec<i32> = rb.sample(100, &mut rng).into_iter().copied().collect();
        assert!(sampled.iter().all(|&x| (2..5).contains(&x)));
    }

    #[test]
    fn sample_covers_contents() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..10 {
            rb.push(i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let sampled: std::collections::HashSet<i32> =
            rb.sample(500, &mut rng).into_iter().copied().collect();
        assert_eq!(sampled.len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_panics() {
        let rb: ReplayBuffer<i32> = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        rb.sample(1, &mut rng);
    }
}
