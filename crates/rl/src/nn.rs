//! Multi-layer perceptron with manual backpropagation.

use crate::tensor::Mat;
use rand::rngs::StdRng;
use rand::Rng;

/// One fully-connected layer `y = x·Wᵀ + b` with gradient accumulators.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    /// Weights, `out × in` row-major.
    pub w: Mat,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    /// Accumulated weight gradients (same shape as `w`).
    pub grad_w: Mat,
    /// Accumulated bias gradients.
    pub grad_b: Vec<f32>,
}

impl Linear {
    /// He-initialized layer (`N(0, √(2/in))`, suitable for ReLU networks).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        let mut w = Mat::zeros(out_dim, in_dim);
        for v in w.data_mut() {
            *v = sample_normal(rng) * std;
        }
        Linear {
            w,
            b: vec![0.0; out_dim],
            grad_w: Mat::zeros(out_dim, in_dim),
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a batch (`batch × in`) → (`batch × out`).
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut out = x.matmul_t(&self.w);
        out.add_row_bias(&self.b);
        out
    }

    /// Backward pass: given `x` (the forward input) and `grad_out`
    /// (`batch × out`), accumulate parameter gradients and return
    /// `grad_in` (`batch × in`).
    pub fn backward(&mut self, x: &Mat, grad_out: &Mat) -> Mat {
        // dW = grad_outᵀ · x ; db = Σ_batch grad_out ; dx = grad_out · W.
        let dw = grad_out.t_matmul(x);
        for (g, d) in self.grad_w.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        for r in 0..grad_out.rows() {
            for (gb, &g) in self.grad_b.iter_mut().zip(grad_out.row(r)) {
                *gb += g;
            }
        }
        grad_out.matmul(&self.w)
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad_w.data_mut() {
            *g = 0.0;
        }
        for g in &mut self.grad_b {
            *g = 0.0;
        }
    }
}

/// Box–Muller standard normal sample.
fn sample_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// An MLP with ReLU activations between layers (none after the last).
///
/// `forward` runs inference only; `forward_train` additionally caches the
/// per-layer inputs needed by `backward`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// Cached inputs to each layer from the last `forward_train` call
    /// (`cache[0]` = network input, `cache[i]` = post-ReLU input of layer i).
    #[serde(skip)]
    cache: Vec<Mat>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `[in, h, h, out]`.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            cache: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].w.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        // Invariant: `Mlp::new` rejects empty layer stacks.
        #[allow(clippy::expect_used)]
        self.layers.last().expect("non-empty").w.rows()
    }

    /// Inference forward pass (no caches touched).
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i != last {
                h.relu_inplace();
            }
        }
        h
    }

    /// Forward pass caching intermediates for [`Mlp::backward`].
    pub fn forward_train(&mut self, x: &Mat) -> Mat {
        self.cache.clear();
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            self.cache.push(h.clone());
            h = layer.forward(&h);
            if i != last {
                h.relu_inplace();
            }
        }
        h
    }

    /// Backpropagate `grad_out` (gradient w.r.t. the network output of the
    /// last `forward_train` batch), accumulating parameter gradients.
    ///
    /// # Panics
    /// Panics if `forward_train` has not been called.
    pub fn backward(&mut self, grad_out: &Mat) {
        assert_eq!(
            self.cache.len(),
            self.layers.len(),
            "call forward_train first"
        );
        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            let x = &self.cache[i];
            if i != self.layers.len() - 1 {
                // Gradient through the ReLU that followed layer i: recompute
                // the activation (y = relu(layer_i(x)) = input cached for
                // layer i+1).
                let y = &self.cache[i + 1];
                for r in 0..grad.rows() {
                    for c in 0..grad.cols() {
                        if y.get(r, c) <= 0.0 {
                            grad.set(r, c, 0.0);
                        }
                    }
                }
            }
            grad = self.layers[i].backward(x, &grad);
        }
    }

    /// Zero all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visit each parameter tensor with its gradient:
    /// `f(tensor_index, params, grads)`.
    pub fn visit_params(&mut self, mut f: impl FnMut(usize, &mut [f32], &[f32])) {
        let mut idx = 0;
        for layer in &mut self.layers {
            // Split borrows: clone grads (small) to keep the closure simple.
            let gw = layer.grad_w.data().to_vec();
            f(idx, layer.w.data_mut(), &gw);
            idx += 1;
            let gb = layer.grad_b.clone();
            f(idx, &mut layer.b, &gb);
            idx += 1;
        }
    }

    /// Number of parameter tensors (for optimizer state sizing).
    pub fn num_tensors(&self) -> usize {
        self.layers.len() * 2
    }

    /// Copy another MLP's parameters into this one (target-network sync).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (dst, src) in self.layers.iter_mut().zip(&other.layers) {
            dst.w = src.w.clone();
            dst.b = src.b.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 3);
        let x = Mat::zeros(5, 4);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[3, 6, 2], &mut rng);
        let x = Mat::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.0, 1.0, -0.5]);
        let a = mlp.forward(&x);
        let b = mlp.forward_train(&x);
        assert_eq!(a, b);
    }

    /// Finite-difference gradient check on a scalar loss L = Σ y².
    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Mat::from_vec(2, 3, vec![0.3, -0.7, 1.2, 0.9, 0.1, -0.4]);

        let loss = |m: &Mlp| -> f32 { m.forward(&x).data().iter().map(|v| v * v).sum() };

        // Analytic gradients: dL/dy = 2y.
        mlp.zero_grad();
        let y = mlp.forward_train(&x);
        let grad_out = Mat::from_vec(
            y.rows(),
            y.cols(),
            y.data().iter().map(|v| 2.0 * v).collect(),
        );
        mlp.backward(&grad_out);

        // Collect analytic grads, then perturb each weight of layer 0.
        let analytic_w0 = mlp.layers[0].grad_w.clone();
        let analytic_b1 = mlp.layers[1].grad_b.clone();
        let eps = 1e-3f32;
        for idx in [0usize, 3, 7] {
            let orig = mlp.layers[0].w.data()[idx];
            mlp.layers[0].w.data_mut()[idx] = orig + eps;
            let lp = loss(&mlp);
            mlp.layers[0].w.data_mut()[idx] = orig - eps;
            let lm = loss(&mlp);
            mlp.layers[0].w.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_w0.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "w0[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for idx in [0usize, 1] {
            let orig = mlp.layers[1].b[idx];
            mlp.layers[1].b[idx] = orig + eps;
            let lp = loss(&mlp);
            mlp.layers[1].b[idx] = orig - eps;
            let lm = loss(&mlp);
            mlp.layers[1].b[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_b1[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "b1[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[2, 4, 1], &mut rng);
        let x = Mat::from_vec(1, 2, vec![1.0, -1.0]);
        let y = mlp.forward_train(&x);
        mlp.backward(&Mat::from_vec(1, 1, vec![2.0 * y.get(0, 0)]));
        mlp.zero_grad();
        assert!(mlp.layers[0].grad_w.data().iter().all(|&g| g == 0.0));
        assert!(mlp.layers[1].grad_b.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn copy_params_syncs_networks() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Mlp::new(&[3, 4, 2], &mut rng);
        let mut b = Mlp::new(&[3, 4, 2], &mut rng);
        let x = Mat::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        assert_ne!(a.forward(&x), b.forward(&x));
        b.copy_params_from(&a);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn deterministic_under_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(6);
            let mlp = Mlp::new(&[4, 8, 2], &mut rng);
            mlp.forward(&Mat::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]))
                .data()
                .to_vec()
        };
        assert_eq!(build(), build());
    }
}
