//! Adam optimizer (Kingma & Ba, 2015).

use crate::nn::Mlp;

/// Adam state and hyperparameters for one network.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the usual defaults (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one Adam step using the gradients accumulated in `net`, then
    /// leave the gradients untouched (callers usually `zero_grad` next).
    pub fn step(&mut self, net: &mut Mlp) {
        if self.m.is_empty() {
            // Lazily size the moment buffers to the network.
            net.visit_params(|_, p, _| {
                self.m.push(vec![0.0; p.len()]);
                self.v.push(vec![0.0; p.len()]);
            });
        }
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        net.visit_params(|idx, params, grads| {
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..params.len() {
                let g = grads[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Mat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Adam must drive a tiny regression problem's loss down.
    #[test]
    fn optimizes_least_squares() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut net = Mlp::new(&[2, 16, 1], &mut rng);
        let mut adam = Adam::new(1e-2);
        // Target function: y = x0 - 2·x1.
        let xs = Mat::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let targets = [0.0f32, 1.0, -2.0, -1.0];
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            net.zero_grad();
            let y = net.forward_train(&xs);
            let mut grad = Mat::zeros(4, 1);
            let mut loss = 0.0;
            for (i, &target) in targets.iter().enumerate() {
                let d = y.get(i, 0) - target;
                loss += d * d;
                grad.set(i, 0, 2.0 * d);
            }
            net.backward(&grad);
            adam.step(&mut net);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.05, "loss {last_loss}");
        assert_eq!(adam.steps(), 400);
    }

    #[test]
    fn zero_gradient_is_a_noop_direction() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Mlp::new(&[2, 4, 1], &mut rng);
        let mut adam = Adam::new(1e-2);
        let x = Mat::from_vec(1, 2, vec![0.3, 0.4]);
        let before = net.forward(&x).get(0, 0);
        net.zero_grad();
        adam.step(&mut net); // all-zero grads
        let after = net.forward(&x).get(0, 0);
        assert!((before - after).abs() < 1e-5);
    }
}
