//! Dense row-major `f32` matrices.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Mat { rows, cols, data }
    }

    /// A 1×n row vector view of a slice.
    pub fn row_vector(v: &[f32]) -> Self {
        Mat::from_vec(1, v.len(), v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue; // one-hot states make inputs very sparse
                }
                let lhs_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let rhs_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in lhs_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let rhs_row = &other.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                let a_row = self.row(i);
                let b_row = other.row(j);
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Add a row vector (broadcast over rows), in place.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Apply ReLU in place.
    pub fn relu_inplace(&mut self) {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(2, 2, vec![1.0, 0.5, -1.0, 2.0]);
        let got = a.t_matmul(&b); // aᵀ(3×2) · b(2×2) = 3×2
                                  // explicit aᵀ
        let at = Mat::from_vec(3, 2, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(got, at.matmul(&b));
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let got = a.matmul_t(&b); // a(2×3) · bᵀ(3×4) = 2×4
        let bt = Mat::from_vec(
            3,
            4,
            vec![0.0, 3.0, 6.0, 9.0, 1.0, 4.0, 7.0, 10.0, 2.0, 5.0, 8.0, 11.0],
        );
        assert_eq!(got, a.matmul(&bt));
    }

    #[test]
    fn bias_broadcasts_over_rows() {
        let mut a = Mat::zeros(2, 3);
        a.add_row_bias(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut a = Mat::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        a.relu_inplace();
        assert_eq!(a.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
