//! Property-based tests for the RL substrate.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rl::{Mat, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)·C == A·(B·C) up to float tolerance.
    #[test]
    fn matmul_associative(a in arb_mat(3, 4), b in arb_mat(4, 2), c in arb_mat(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// t_matmul and matmul_t agree with explicit transposition through
    /// matmul.
    #[test]
    fn transpose_products_agree(a in arb_mat(3, 4), b in arb_mat(3, 2)) {
        // aᵀ·b via t_matmul.
        let got = a.t_matmul(&b);
        // Explicit transpose of a.
        let mut at = Mat::zeros(4, 3);
        for r in 0..3 {
            for c in 0..4 {
                at.set(c, r, a.get(r, c));
            }
        }
        let want = at.matmul(&b);
        for (x, y) in got.data().iter().zip(want.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// MLP forward is deterministic and ReLU keeps hidden activations from
    /// producing NaN for finite inputs.
    #[test]
    fn mlp_forward_finite(x in arb_mat(2, 6), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&[6, 12, 3], &mut rng);
        let y1 = mlp.forward(&x);
        let y2 = mlp.forward(&x);
        prop_assert_eq!(&y1, &y2);
        prop_assert!(y1.data().iter().all(|v| v.is_finite()));
    }

    /// Gradient check against finite differences on random small networks
    /// and inputs (loss = sum of outputs).
    #[test]
    fn mlp_gradients_match_finite_differences(x in arb_mat(2, 3), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&[3, 4, 2], &mut rng);
        let loss = |m: &Mlp, x: &Mat| -> f32 { m.forward(x).data().iter().sum() };

        mlp.zero_grad();
        let y = mlp.forward_train(&x);
        let grad_out = Mat::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        mlp.backward(&grad_out);

        // Probe two weights in layer 0 via visit_params.
        let mut analytic: Vec<(usize, usize, f32)> = Vec::new();
        mlp.visit_params(|idx, _p, g| {
            if idx == 0 {
                analytic.push((idx, 0, g[0]));
                if g.len() > 5 {
                    analytic.push((idx, 5, g[5]));
                }
            }
        });
        let eps = 1e-2f32;
        let l0 = loss(&mlp, &x);
        for (idx, at, g) in analytic {
            let mut lp = 0.0;
            let mut lm = 0.0;
            mlp.visit_params(|i, p, _| {
                if i == idx {
                    p[at] += eps;
                }
            });
            lp += loss(&mlp, &x);
            mlp.visit_params(|i, p, _| {
                if i == idx {
                    p[at] -= 2.0 * eps;
                }
            });
            lm += loss(&mlp, &x);
            mlp.visit_params(|i, p, _| {
                if i == idx {
                    p[at] += eps; // restore
                }
            });
            let numeric = (lp - lm) / (2.0 * eps);
            // The loss is piecewise-linear in each weight (ReLU net, linear
            // loss): away from a kink the second difference is ~0. If the
            // perturbation crossed a ReLU kink, the central difference is
            // meaningless — skip that probe.
            let curvature = (lp + lm - 2.0 * l0).abs();
            if curvature > eps * 1e-2 {
                continue;
            }
            prop_assert!(
                (numeric - g).abs() < 0.05 * (1.0 + g.abs()),
                "tensor {idx}[{at}]: numeric {numeric} vs analytic {g}"
            );
        }
    }
}
