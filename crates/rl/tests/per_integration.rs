//! Integration: DQN with prioritized replay still solves the corridor, and
//! does not regress vs uniform replay.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rl::{DqnAgent, DqnConfig, Transition};

fn corridor(config: DqnConfig) -> bool {
    let n = 5usize;
    let encode = |s: usize| {
        let mut v = vec![0.0f32; n];
        v[s] = 1.0;
        v
    };
    let mut agent = DqnAgent::new(config);
    let mask = vec![true, true];
    for _ in 0..300 {
        let mut s = 0usize;
        for _ in 0..30 {
            let a = agent.select_action(&encode(s), &mask);
            let ns = if a == 1 { s + 1 } else { s.saturating_sub(1) };
            let done = ns == n - 1;
            agent.observe(Transition {
                state: encode(s),
                action: a,
                reward: if done { 1.0 } else { -0.01 },
                next: if done {
                    None
                } else {
                    Some((encode(ns), mask.clone()))
                },
            });
            agent.learn();
            if done {
                break;
            }
            s = ns;
        }
    }
    agent.freeze_exploration();
    (0..n - 1).all(|s| agent.greedy_action(&encode(s), &mask) == 1)
}

fn base_config() -> DqnConfig {
    let mut cfg = DqnConfig::new(5, 2);
    cfg.hidden = vec![32];
    cfg.epsilon_decay_steps = 1500;
    cfg.lr = 5e-3;
    cfg.seed = 42;
    cfg.target_sync_every = 50;
    cfg
}

#[test]
fn per_agent_learns_corridor() {
    let mut cfg = base_config();
    cfg.prioritized_replay = true;
    assert!(corridor(cfg), "PER agent should learn the corridor policy");
}

#[test]
fn per_is_deterministic_under_seed() {
    let run = || {
        let mut cfg = base_config();
        cfg.prioritized_replay = true;
        cfg.seed = 77;
        let mut agent = DqnAgent::new(cfg);
        let mask = vec![true, true];
        let mut actions = Vec::new();
        for i in 0..80 {
            let s = vec![(i % 5) as f32 / 5.0, 0.0, 0.0, 0.5, 1.0];
            let a = agent.select_action(&s, &mask);
            actions.push(a);
            agent.observe(Transition {
                state: s,
                action: a,
                reward: a as f32,
                next: None,
            });
            agent.learn();
        }
        actions
    };
    assert_eq!(run(), run());
}
