//! Sharding is a wall-clock optimisation only: at every SHARDS × threads
//! combination the sharded engine must produce bitwise-identical
//! predictions, scores and candidate counts to one [`IncrEngine`] over the
//! whole master — including NULL-keyed (broadcast) request rows, appends,
//! aggregated statistics, and the degenerate no-common-pair plan.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use er_incr::IncrEngine;
use er_rules::{BatchError, EditingRule, RepairReport};
use er_shard::{Route, ShardPlan, ShardedEngine, ShardedRepair};
use er_table::{Relation, Value};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn covid() -> Scenario {
    DatasetKind::Covid.build(ScenarioConfig {
        input_size: 400,
        master_size: 200,
        seed: 11,
        ..DatasetKind::Covid.paper_config()
    })
}

/// Rules that all share one LHS pair (the routing pair), so a multi-shard
/// plan is non-degenerate: one single-pair rule plus one two-pair rule per
/// remaining candidate pair.
fn routable_rules(s: &Scenario) -> Vec<EditingRule> {
    let target = s.task.target();
    let pairs = s.task.candidate_lhs_pairs();
    assert!(pairs.len() >= 2, "fixture needs at least two LHS pairs");
    let common = pairs[0];
    let mut rules = vec![EditingRule::new(vec![common], target, vec![])];
    for &p in &pairs[1..] {
        rules.push(EditingRule::new(vec![common, p], target, vec![]));
    }
    rules
}

/// The request batch: the scenario's input plus rows whose routing-key
/// value is NULL, to force broadcasts.
fn batch_with_null_keys(s: &Scenario, rules: &[EditingRule]) -> Relation {
    let plan = ShardPlan::new(2, rules);
    let (x, _) = plan.key().expect("routable rules must share a pair");
    let input = s.task.input();
    let mut batch = input.clone();
    for row in 0..3 {
        let mut values: Vec<Value> = (0..input.num_attrs())
            .map(|a| input.value(row, a))
            .collect();
        values[x] = Value::Null;
        batch.push_row(values).unwrap();
    }
    batch
}

fn assert_same(sharded: &ShardedRepair, reference: &RepairReport, label: &str) {
    assert_eq!(
        sharded.predictions, reference.predictions,
        "predictions diverged: {label}"
    );
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&sharded.scores),
        bits(&reference.scores),
        "scores diverged bitwise: {label}"
    );
    assert_eq!(
        sharded.candidates, reference.candidates,
        "candidate counts diverged: {label}"
    );
}

#[test]
fn sharded_repair_is_byte_identical_at_every_shard_and_thread_count() {
    let s = covid();
    let target = s.task.target();
    let rules = routable_rules(&s);
    let batch = batch_with_null_keys(&s, &rules);
    let reference = IncrEngine::new(s.task.master().clone(), target, rules.clone(), 1)
        .unwrap()
        .repair_batch(&batch)
        .unwrap();
    assert!(
        reference.predictions.iter().any(Option::is_some),
        "fixture must predict something"
    );
    for &threads in &THREAD_COUNTS {
        for &shards in &SHARD_COUNTS {
            let engine = ShardedEngine::new(
                s.task.master().clone(),
                target,
                rules.clone(),
                threads,
                shards,
            )
            .unwrap();
            let repair = engine.repair_batch(&batch, None).unwrap();
            assert_same(
                &repair,
                &reference,
                &format!("{shards} shards, {threads} threads"),
            );
            if shards == 1 {
                // The single-shard fast path routes everything, NULLs included.
                assert_eq!(engine.routed(), batch.num_rows() as u64);
            } else {
                // At least the 3 crafted rows broadcast (the scenario's own
                // input carries natural NULLs at the routing attribute too).
                assert!(engine.broadcast() >= 3, "NULL-keyed rows must broadcast");
                assert_eq!(
                    engine.routed() + engine.broadcast(),
                    batch.num_rows() as u64
                );
                let stats = engine.shard_stats();
                assert!(
                    stats.rows_max < stats.rows_total,
                    "placement must actually spread rows over shards"
                );
                assert!(stats.imbalance() >= 1.0);
            }
        }
    }
}

#[test]
fn appends_preserve_equivalence_generation_and_the_combined_master() {
    let s = covid();
    let target = s.task.target();
    let rules = routable_rules(&s);
    let batch = batch_with_null_keys(&s, &rules);
    let plan = ShardPlan::new(8, &rules);
    let (_, xm) = plan.key().unwrap();
    let master = s.task.master();
    // Duplicates of existing master rows (shifts vote counts) plus one row
    // with a NULL routing key (homed deterministically, can never vote).
    let mut extra: Vec<Vec<Value>> = (0..8)
        .map(|row| {
            (0..master.num_attrs())
                .map(|a| master.value(row, a))
                .collect()
        })
        .collect();
    let mut null_keyed: Vec<Value> = extra[0].clone();
    null_keyed[xm] = Value::Null;
    extra.push(null_keyed);

    let mut single = IncrEngine::new(master.clone(), target, rules.clone(), 1).unwrap();
    let single_outcome = single.append_rows(&extra).unwrap();
    let reference = single.repair_batch(&batch).unwrap();

    for &shards in &SHARD_COUNTS {
        let engine = ShardedEngine::new(master.clone(), target, rules.clone(), 2, shards).unwrap();
        let outcome = engine.append_rows(&extra).unwrap();
        assert_eq!(outcome.appended, single_outcome.appended);
        assert_eq!(outcome.master_rows, single_outcome.master_rows);
        assert_eq!(outcome.generation, single_outcome.generation);
        assert_eq!(outcome.indexes_updated, single_outcome.indexes_updated);

        let repair = engine.repair_batch(&batch, None).unwrap();
        assert_same(
            &repair,
            &reference,
            &format!("{shards} shards after append"),
        );

        let view = engine.read_view();
        assert_eq!(view.generation(), single.generation());
        assert_eq!(view.staleness(), single.staleness());
        assert_eq!(view.master_rows(), single.master().num_rows());
        let combined = view.combined_master();
        assert_eq!(combined.num_rows(), single.master().num_rows());
        for row in 0..combined.num_rows() {
            for attr in 0..combined.num_attrs() {
                assert_eq!(
                    combined.code(row, attr),
                    single.master().code(row, attr),
                    "combined master diverged at row {row} attr {attr} ({shards} shards)"
                );
            }
        }
    }
}

#[test]
fn vote_stats_aggregate_exactly_across_shards() {
    let s = covid();
    let target = s.task.target();
    let rules = routable_rules(&s);
    let batch = batch_with_null_keys(&s, &rules);
    let single = IncrEngine::new(s.task.master().clone(), target, rules.clone(), 1).unwrap();
    single.repair_batch(&batch).unwrap();
    for &shards in &SHARD_COUNTS {
        let engine =
            ShardedEngine::new(s.task.master().clone(), target, rules.clone(), 1, shards).unwrap();
        engine.repair_batch(&batch, None).unwrap();
        let view = engine.read_view();
        assert_eq!(view.vote_stats(), single.vote_stats(), "{shards} shards");
        assert_eq!(view.num_rules(), single.num_rules());
        assert_eq!(view.num_indexes(), single.num_indexes());
        assert_eq!(view.target(), single.target());
    }
}

#[test]
fn invalid_appends_report_the_first_offending_row_and_leave_shards_untouched() {
    let s = covid();
    let target = s.task.target();
    let rules = routable_rules(&s);
    let batch = batch_with_null_keys(&s, &rules);
    let master = s.task.master();
    let good: Vec<Value> = (0..master.num_attrs())
        .map(|a| master.value(0, a))
        .collect();
    let bad = vec![Value::str("wrong-arity")];
    let rows = vec![good.clone(), bad, good];

    let mut single = IncrEngine::new(master.clone(), target, rules.clone(), 1).unwrap();
    let single_err = single.append_rows(&rows).unwrap_err();
    let reference = single.repair_batch(&batch).unwrap();

    for &shards in &SHARD_COUNTS {
        let engine = ShardedEngine::new(master.clone(), target, rules.clone(), 1, shards).unwrap();
        let err = engine.append_rows(&rows).unwrap_err();
        match (&err, &single_err) {
            (
                BatchError::AppendRow { row, message },
                BatchError::AppendRow {
                    row: want_row,
                    message: want_message,
                },
            ) => {
                assert_eq!(row, want_row, "{shards} shards");
                assert_eq!(message, want_message, "{shards} shards");
            }
            other => panic!("expected AppendRow on both paths, got {other:?}"),
        }
        // All-or-nothing: the failed append changed nothing.
        let repair = engine.repair_batch(&batch, None).unwrap();
        assert_same(
            &repair,
            &reference,
            &format!("{shards} shards post-rejected-append"),
        );
        assert_eq!(engine.read_view().generation(), single.generation());
    }
}

#[test]
fn degenerate_rule_sets_fall_back_to_shard_zero_and_stay_exact() {
    let s = covid();
    let target = s.task.target();
    let pairs = s.task.candidate_lhs_pairs();
    // No pair is common to all rules: the plan must degrade, not misroute.
    let rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    let plan = ShardPlan::new(4, &rules);
    assert!(plan.is_degenerate());

    let input = s.task.input();
    let reference = IncrEngine::new(s.task.master().clone(), target, rules.clone(), 1)
        .unwrap()
        .repair_batch(input)
        .unwrap();
    let engine = ShardedEngine::new(s.task.master().clone(), target, rules.clone(), 1, 4).unwrap();
    let repair = engine.repair_batch(input, None).unwrap();
    assert_same(&repair, &reference, "degenerate 4-shard plan");
    let stats = engine.shard_stats();
    assert_eq!(stats.rows_max, stats.rows_total, "everything on shard 0");
    assert_eq!(stats.broadcast, 0);
    assert_eq!(plan.route(&Value::str("anything")), Route::To(0));
}
