//! The sharded engine: N independent [`IncrEngine`]s behind per-shard
//! read/write locks, a global row-order ledger for reconstructing the
//! combined master, and the fan-out/merge logic for repairs and appends.
//!
//! Lock discipline (deadlock freedom): every multi-lock acquisition takes
//! the order ledger first, then the shard locks in ascending shard id.
//! Repairs take only individual shard read locks; appends take everything.

use crate::plan::{Route, ShardPlan};
use er_incr::{AppendOutcome, IncrCounters, IncrEngine};
use er_rules::{BatchError, EditingRule, RepairReport, VoteStats};
use er_table::{AttrId, Code, Relation, RelationBuilder, Value};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Result of a sharded repair: per-row predictions, winning scores and
/// candidate counts, bitwise identical to the single-engine
/// [`RepairReport`] on the same batch. The single engine's `rules_applied`
/// counter is *not* exactly mergeable across shards (a rule may apply on
/// several shards) and is deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRepair {
    /// Predicted `Y` code per input row (`None` = no rule applied).
    pub predictions: Vec<Option<Code>>,
    /// Accumulated certainty-score mass of the winning candidate per row.
    pub scores: Vec<f64>,
    /// Distinct candidate fixes that received votes per row.
    pub candidates: Vec<usize>,
}

impl From<RepairReport> for ShardedRepair {
    fn from(report: RepairReport) -> Self {
        ShardedRepair {
            predictions: report.predictions,
            scores: report.scores,
            candidates: report.candidates,
        }
    }
}

/// Aggregate shard-level counters for the serve `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Request rows routed to exactly one shard (lifetime).
    pub routed: u64,
    /// Request rows broadcast to every shard (lifetime).
    pub broadcast: u64,
    /// Master rows on the fullest shard.
    pub rows_max: u64,
    /// Master rows across all shards.
    pub rows_total: u64,
}

impl ShardStats {
    /// Placement skew: `rows_max * shards / rows_total`. 1.0 is a perfect
    /// spread, `shards as f64` means everything landed on one shard (the
    /// degenerate no-common-pair plan reports exactly that).
    pub fn imbalance(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            (self.rows_max * self.shards as u64) as f64 / self.rows_total as f64
        }
    }
}

/// N independent engines plus the placement plan that keeps them exact.
pub struct ShardedEngine {
    plan: ShardPlan,
    /// Generation the original master had when the shards were carved out
    /// of it (`gather` resets per-shard generations to 0, so the aggregate
    /// generation is `base + Σ per-shard`). 0 in the single-shard case,
    /// which keeps the engine byte-compatible with the unsharded path.
    base_generation: u64,
    shards: Vec<RwLock<IncrEngine>>,
    /// Home shard of every master row in global arrival order; the key to
    /// rebuilding the combined master exactly as the single engine saw it.
    order: RwLock<Vec<u32>>,
    routed: AtomicU64,
    broadcast: AtomicU64,
    /// Whether every shard holds a live er-analyze confluence-certificate
    /// stamp. The license for both arrival-order paths: the per-shard
    /// group fan-out (`BatchRepairer::set_unordered`) and the cross-shard
    /// merge-on-arrival in [`ShardedEngine::repair_batch`]. Any committed
    /// append clears it until the serving layer re-runs the pass.
    certified: AtomicBool,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("plan", &self.plan)
            .field("base_generation", &self.base_generation)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedEngine {
    /// Partition `master` into `shards` engines for `rules` targeting
    /// `target`, each repairing with up to `threads` workers (0 = auto).
    ///
    /// `shards <= 1` keeps the original relation (and its generation)
    /// intact on a single shard — exactly the unsharded engine.
    pub fn new(
        master: Relation,
        target: (AttrId, AttrId),
        rules: Vec<EditingRule>,
        threads: usize,
        shards: usize,
    ) -> Result<Self, BatchError> {
        let plan = ShardPlan::new(shards, &rules);
        let n = plan.shards();
        if n == 1 {
            let order = vec![0u32; master.num_rows()];
            let engine = IncrEngine::new(master, target, rules, threads)?;
            return Ok(ShardedEngine {
                plan,
                base_generation: 0,
                shards: vec![RwLock::new(engine)],
                order: RwLock::new(order),
                routed: AtomicU64::new(0),
                broadcast: AtomicU64::new(0),
                certified: AtomicBool::new(false),
            });
        }
        let base_generation = master.generation();
        let mut order = Vec::with_capacity(master.num_rows());
        let mut rows_per: Vec<Vec<usize>> = vec![Vec::new(); n];
        for row in 0..master.num_rows() {
            let shard = match plan.key() {
                Some((_, xm)) => plan.place(&master.value(row, xm)),
                None => 0,
            };
            order.push(shard as u32);
            rows_per[shard].push(row);
        }
        let mut engines = Vec::with_capacity(n);
        for rows in &rows_per {
            let sub = master.gather(rows);
            engines.push(RwLock::new(IncrEngine::new(
                sub,
                target,
                rules.clone(),
                threads,
            )?));
        }
        Ok(ShardedEngine {
            plan,
            base_generation,
            shards: engines,
            order: RwLock::new(order),
            routed: AtomicU64::new(0),
            broadcast: AtomicU64::new(0),
            certified: AtomicBool::new(false),
        })
    }

    /// Install a confluence-certificate stamp issued at aggregate master
    /// generation `generation`: every shard switches its group fan-out to
    /// arrival order and [`ShardedEngine::repair_batch`] merges shard
    /// answers as they complete instead of in ascending shard order.
    /// Returns whether the license took — the stamp must match the live
    /// aggregate generation, else everything stays (or reverts to) ordered.
    /// Takes every write lock briefly; the engine does not re-verify the
    /// certificate — callers run the er-analyze confluence pass first.
    pub fn set_confluence_stamp(&self, generation: u64) -> bool {
        let _order = self.order.write();
        let mut shards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        let live = self.base_generation + shards.iter().map(|s| s.generation()).sum::<u64>();
        let ok = generation == live;
        for shard in &mut shards {
            if ok {
                let g = shard.generation();
                shard.set_confluence_stamp(g);
            } else {
                shard.clear_confluence_stamp();
            }
        }
        self.certified.store(ok, Ordering::Release);
        ok
    }

    /// Drop the certificate stamp everywhere: every shard's fan-out and
    /// the cross-shard merge return to their ordered paths.
    pub fn clear_confluence_stamp(&self) {
        let _order = self.order.write();
        let mut shards: Vec<_> = self.shards.iter().map(|s| s.write()).collect();
        for shard in &mut shards {
            shard.clear_confluence_stamp();
        }
        self.certified.store(false, Ordering::Release);
    }

    /// Whether the arrival-order paths are currently licensed.
    pub fn confluence_certified(&self) -> bool {
        self.certified.load(Ordering::Acquire)
    }

    /// The placement plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime count of request rows routed to exactly one shard.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Lifetime count of request rows broadcast to every shard.
    pub fn broadcast(&self) -> u64 {
        self.broadcast.load(Ordering::Relaxed)
    }

    /// Repair one batch: route each row by the plan, fan sub-batches out to
    /// their shards (in parallel), and merge. Without a confluence stamp
    /// the merge waits for every shard and applies answers in ascending
    /// shard order; with one ([`ShardedEngine::set_confluence_stamp`]) each
    /// shard's answer is merged the moment it completes. Both are bitwise
    /// identical to the single engine on the same batch — see
    /// [`merge_shard`] for why arrival order is invisible. The first shard
    /// error wins (ascending order unstamped, arrival order stamped); the
    /// distinction matters only for the inherently timing-dependent
    /// `DeadlineExceeded`, since every other error is identical across
    /// shards (same rules, schema, and pool everywhere).
    pub fn repair_batch(
        &self,
        batch: &Relation,
        deadline: Option<Instant>,
    ) -> Result<ShardedRepair, BatchError> {
        let n = self.shards.len();
        if n == 1 {
            self.routed
                .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
            let shard = self.shards[0].read();
            return Ok(run_repair(&shard, batch, deadline)?.into());
        }
        let rows = batch.num_rows();
        let key_x = self.plan.key().map(|(x, _)| x);
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut routes: Vec<Route> = Vec::with_capacity(rows);
        let (mut routed, mut broadcast) = (0u64, 0u64);
        for row in 0..rows {
            let route = match key_x {
                None => Route::To(0),
                Some(x) => self.plan.route(&batch.value(row, x)),
            };
            match route {
                Route::To(s) => {
                    routed += 1;
                    lists[s].push(row);
                }
                Route::Broadcast => {
                    broadcast += 1;
                    for list in &mut lists {
                        list.push(row);
                    }
                }
            }
            routes.push(route);
        }
        self.routed.fetch_add(routed, Ordering::Relaxed);
        self.broadcast.fetch_add(broadcast, Ordering::Relaxed);

        let mut merged = ShardedRepair {
            predictions: vec![None; rows],
            scores: vec![0.0; rows],
            candidates: vec![0; rows],
        };
        let mut filled = vec![false; rows];

        if self.certified.load(Ordering::Acquire) {
            // Certificate-licensed merge-on-arrival: shard answers stream
            // over a channel and scatter into `merged` as they land, so the
            // slowest shard no longer serializes the whole collect loop.
            let mut failure: Option<BatchError> = None;
            std::thread::scope(|scope| {
                let (tx, rx) = std::sync::mpsc::channel();
                for (s, list) in lists.iter().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    let sub = batch.gather(list);
                    let shard = &self.shards[s];
                    let tx = tx.clone();
                    scope.spawn(move || {
                        // The receiver drains the channel before the scope
                        // joins the workers, so this send cannot fail.
                        let _ = tx.send((s, run_repair(&shard.read(), &sub, deadline)));
                    });
                }
                drop(tx);
                for (s, result) in rx {
                    match result {
                        Ok(report) => {
                            merge_shard(&mut merged, &mut filled, &routes, &lists[s], s, &report);
                        }
                        Err(e) => {
                            failure.get_or_insert(e);
                        }
                    }
                }
            });
            if let Some(e) = failure {
                return Err(e);
            }
            return Ok(merged);
        }

        let mut results: Vec<Option<Result<RepairReport, BatchError>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (s, list) in lists.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let sub = batch.gather(list);
                let shard = &self.shards[s];
                handles.push((
                    s,
                    scope.spawn(move || run_repair(&shard.read(), &sub, deadline)),
                ));
            }
            for (s, handle) in handles {
                results[s] = Some(match handle.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                });
            }
        });
        for (s, result) in results.into_iter().enumerate() {
            match result {
                None => {}
                Some(Ok(report)) => {
                    merge_shard(&mut merged, &mut filled, &routes, &lists[s], s, &report);
                }
                Some(Err(e)) => return Err(e),
            }
        }
        Ok(merged)
    }

    /// Take every write lock (order ledger first, shards ascending) for an
    /// all-or-nothing append. The guard lets the caller preview the
    /// combined post-append master for analysis gates under the *same*
    /// locks the commit will use — no TOCTOU window.
    pub fn begin_append(&self) -> AppendGuard<'_> {
        AppendGuard {
            plan: &self.plan,
            base_generation: self.base_generation,
            order: self.order.write(),
            shards: self.shards.iter().map(|s| s.write()).collect(),
            certified: &self.certified,
        }
    }

    /// Append without a gate: two-phase validate-then-commit.
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<AppendOutcome, BatchError> {
        self.begin_append().commit(rows)
    }

    /// Take every read lock for consistent aggregate reads.
    pub fn read_view(&self) -> ReadView<'_> {
        ReadView {
            base_generation: self.base_generation,
            order: self.order.read(),
            shards: self.shards.iter().map(|s| s.read()).collect(),
        }
    }

    /// Aggregate shard counters (takes the read locks briefly).
    pub fn shard_stats(&self) -> ShardStats {
        let view = self.read_view();
        let mut rows_max = 0u64;
        let mut rows_total = 0u64;
        for shard in &view.shards {
            let rows = shard.master().num_rows() as u64;
            rows_max = rows_max.max(rows);
            rows_total += rows;
        }
        ShardStats {
            shards: view.shards.len(),
            routed: self.routed(),
            broadcast: self.broadcast(),
            rows_max,
            rows_total,
        }
    }
}

/// Scatter one shard's report into the merged result. Exact regardless of
/// the order shards are merged in: a routed row is answered by exactly one
/// shard, and a broadcast row — NULL routing key, and the routing pair is
/// in every rule's LHS — fires no rule on any shard, so every shard
/// reports the identical `(None, 0.0, 0)` for it and `filled` keeping the
/// first arrival is exact either way.
fn merge_shard(
    merged: &mut ShardedRepair,
    filled: &mut [bool],
    routes: &[Route],
    list: &[usize],
    s: usize,
    report: &RepairReport,
) {
    for (local, &row) in list.iter().enumerate() {
        let own = match routes[row] {
            Route::To(t) => t == s,
            Route::Broadcast => !filled[row],
        };
        if own {
            merged.predictions[row] = report.predictions[local];
            merged.scores[row] = report.scores[local];
            merged.candidates[row] = report.candidates[local];
            filled[row] = true;
        }
    }
}

fn run_repair(
    engine: &IncrEngine,
    batch: &Relation,
    deadline: Option<Instant>,
) -> Result<RepairReport, BatchError> {
    match deadline {
        Some(deadline) => engine.repair_batch_deadline(batch, deadline),
        None => engine.repair_batch(batch),
    }
}

/// Rebuild the master as the single engine would see it: rows in global
/// arrival order, codes re-pushed through a builder over the shared
/// schema/pool (no re-interning; generation ends at the row count, which is
/// what builder-built masters report on the serve path anyway).
fn combined(order: &[u32], masters: &[&Relation]) -> Relation {
    if masters.len() == 1 {
        return masters[0].clone();
    }
    let schema = masters[0].schema().clone();
    let pool = masters[0].pool().clone();
    let arity = masters[0].num_attrs();
    let mut builder = RelationBuilder::new(schema, pool);
    let mut cursors = vec![0usize; masters.len()];
    let mut codes: Vec<Code> = vec![0; arity];
    for &shard in order {
        let shard = shard as usize;
        let row = cursors[shard];
        for (attr, slot) in codes.iter_mut().enumerate() {
            *slot = masters[shard].code(row, attr);
        }
        builder.push_codes(&codes);
        cursors[shard] += 1;
    }
    builder.finish()
}

/// All shard write locks, held for the duration of one gated append.
pub struct AppendGuard<'a> {
    plan: &'a ShardPlan,
    base_generation: u64,
    order: RwLockWriteGuard<'a, Vec<u32>>,
    shards: Vec<RwLockWriteGuard<'a, IncrEngine>>,
    certified: &'a AtomicBool,
}

impl AppendGuard<'_> {
    /// The combined master under the held locks.
    pub fn combined_master(&self) -> Relation {
        let masters: Vec<&Relation> = self.shards.iter().map(|s| s.master()).collect();
        combined(&self.order, &masters)
    }

    /// Combined master with `rows` appended — the analysis-gate preview.
    /// `None` if any row fails schema validation; the caller then calls
    /// [`AppendGuard::commit`] anyway and reports its per-row error.
    pub fn preview(&self, rows: &[Vec<Value>]) -> Option<Relation> {
        let mut master = self.combined_master();
        for row in rows {
            master.push_row_ref(row).ok()?;
        }
        Some(master)
    }

    /// Two-phase commit: validate every row in global order (phase 1, so
    /// the first offending row is reported exactly as the single engine
    /// would), then partition and commit per shard (phase 2 — infallible
    /// after phase 1, since `validate_row` is the complete append
    /// precondition and warm group indexes absorb appends in place).
    pub fn commit(mut self, rows: &[Vec<Value>]) -> Result<AppendOutcome, BatchError> {
        let n = self.shards.len();
        if n == 1 {
            let outcome = self.shards[0].append_rows(rows)?;
            self.order.extend(std::iter::repeat_n(0, rows.len()));
            if !rows.is_empty() {
                self.invalidate_confluence();
            }
            return Ok(outcome);
        }
        for (i, row) in rows.iter().enumerate() {
            self.shards[0]
                .master()
                .validate_row(row)
                .map_err(|e| BatchError::AppendRow {
                    row: i,
                    message: e.to_string(),
                })?;
        }
        let mut per: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
        let mut homes: Vec<u32> = Vec::with_capacity(rows.len());
        for row in rows {
            let shard = match self.plan.key() {
                Some((_, xm)) => self.plan.place(&row[xm]),
                None => 0,
            };
            per[shard].push(row.clone());
            homes.push(shard as u32);
        }
        for (shard, sub) in per.iter().enumerate() {
            if !sub.is_empty() {
                self.shards[shard].append_rows(sub)?;
            }
        }
        self.order.extend(homes);
        if !rows.is_empty() {
            self.invalidate_confluence();
        }
        let mut master_rows = 0;
        let mut generation = self.base_generation;
        for shard in &self.shards {
            master_rows += shard.master().num_rows();
            generation += shard.generation();
        }
        Ok(AppendOutcome {
            appended: rows.len(),
            master_rows,
            generation,
            // Same warm indexes on every shard (same rule set); report the
            // per-engine count the single path reports.
            indexes_updated: self.shards[0].num_indexes(),
        })
    }

    /// A committed append moved the aggregate generation past any held
    /// confluence stamp: drop the arrival-order license on every shard
    /// (even ones the append skipped — the certificate covers the combined
    /// master, not the sub-masters) until the pass re-certifies.
    fn invalidate_confluence(&mut self) {
        for shard in &mut self.shards {
            shard.clear_confluence_stamp();
        }
        self.certified.store(false, Ordering::Release);
    }
}

/// All shard read locks, for consistent aggregate reads.
pub struct ReadView<'a> {
    base_generation: u64,
    order: RwLockReadGuard<'a, Vec<u32>>,
    shards: Vec<RwLockReadGuard<'a, IncrEngine>>,
}

impl ReadView<'_> {
    /// The combined master in global arrival order.
    pub fn combined_master(&self) -> Relation {
        let masters: Vec<&Relation> = self.shards.iter().map(|s| s.master()).collect();
        combined(&self.order, &masters)
    }

    /// Total master rows across shards.
    pub fn master_rows(&self) -> usize {
        self.shards.iter().map(|s| s.master().num_rows()).sum()
    }

    /// Master rows per shard, ascending shard id.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.master().num_rows()).collect()
    }

    /// Aggregate master generation: what the single engine would report
    /// after the same construction + append history.
    pub fn generation(&self) -> u64 {
        self.base_generation + self.shards.iter().map(|s| s.generation()).sum::<u64>()
    }

    /// Aggregate rule staleness (appends since the rules were installed).
    pub fn staleness(&self) -> u64 {
        self.shards.iter().map(|s| s.staleness()).sum()
    }

    /// Summed incremental-vs-rebuild counters.
    pub fn counters(&self) -> IncrCounters {
        let mut total = IncrCounters::default();
        for shard in &self.shards {
            let c = shard.counters();
            total.incremental_updates += c.incremental_updates;
            total.rebuilds += c.rebuilds;
        }
        total
    }

    /// Summed vote statistics. Exact: every non-NULL-keyed request row is
    /// grouped and probed on exactly one shard, and NULL-keyed rows are
    /// counted on none (their signatures are NO_SIG everywhere).
    pub fn vote_stats(&self) -> VoteStats {
        let mut total = VoteStats::default();
        for shard in &self.shards {
            let v = shard.vote_stats();
            total.rows += v.rows;
            total.probes += v.probes;
        }
        total
    }

    /// Warm group indexes per shard (identical on every shard).
    pub fn num_indexes(&self) -> usize {
        self.shards[0].num_indexes()
    }

    /// Rules installed (identical on every shard).
    pub fn num_rules(&self) -> usize {
        self.shards[0].num_rules()
    }

    /// The installed rule set (identical on every shard).
    pub fn rules(&self) -> &[EditingRule] {
        self.shards[0].rules()
    }

    /// The repair target pair.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.shards[0].target()
    }
}
