//! The sharded engine: N independent [`IncrEngine`]s behind per-shard
//! read/write locks, a global row-order ledger for reconstructing the
//! combined master, and the fan-out/merge logic for repairs and appends.
//!
//! Lock discipline (deadlock freedom): every multi-lock acquisition takes
//! the order ledger first, then the shard locks in ascending shard id.
//! Repairs take only individual shard read locks; appends take everything.

use crate::plan::{Route, ShardPlan};
use er_incr::{AppendOutcome, IncrCounters, IncrEngine};
use er_rules::{BatchError, EditingRule, RepairReport, VoteStats};
use er_table::{AttrId, Code, Relation, RelationBuilder, Value};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Result of a sharded repair: per-row predictions, winning scores and
/// candidate counts, bitwise identical to the single-engine
/// [`RepairReport`] on the same batch. The single engine's `rules_applied`
/// counter is *not* exactly mergeable across shards (a rule may apply on
/// several shards) and is deliberately absent.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRepair {
    /// Predicted `Y` code per input row (`None` = no rule applied).
    pub predictions: Vec<Option<Code>>,
    /// Accumulated certainty-score mass of the winning candidate per row.
    pub scores: Vec<f64>,
    /// Distinct candidate fixes that received votes per row.
    pub candidates: Vec<usize>,
}

impl From<RepairReport> for ShardedRepair {
    fn from(report: RepairReport) -> Self {
        ShardedRepair {
            predictions: report.predictions,
            scores: report.scores,
            candidates: report.candidates,
        }
    }
}

/// Aggregate shard-level counters for the serve `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Request rows routed to exactly one shard (lifetime).
    pub routed: u64,
    /// Request rows broadcast to every shard (lifetime).
    pub broadcast: u64,
    /// Master rows on the fullest shard.
    pub rows_max: u64,
    /// Master rows across all shards.
    pub rows_total: u64,
}

impl ShardStats {
    /// Placement skew: `rows_max * shards / rows_total`. 1.0 is a perfect
    /// spread, `shards as f64` means everything landed on one shard (the
    /// degenerate no-common-pair plan reports exactly that).
    pub fn imbalance(&self) -> f64 {
        if self.rows_total == 0 {
            1.0
        } else {
            (self.rows_max * self.shards as u64) as f64 / self.rows_total as f64
        }
    }
}

/// N independent engines plus the placement plan that keeps them exact.
pub struct ShardedEngine {
    plan: ShardPlan,
    /// Generation the original master had when the shards were carved out
    /// of it (`gather` resets per-shard generations to 0, so the aggregate
    /// generation is `base + Σ per-shard`). 0 in the single-shard case,
    /// which keeps the engine byte-compatible with the unsharded path.
    base_generation: u64,
    shards: Vec<RwLock<IncrEngine>>,
    /// Home shard of every master row in global arrival order; the key to
    /// rebuilding the combined master exactly as the single engine saw it.
    order: RwLock<Vec<u32>>,
    routed: AtomicU64,
    broadcast: AtomicU64,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("plan", &self.plan)
            .field("base_generation", &self.base_generation)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardedEngine {
    /// Partition `master` into `shards` engines for `rules` targeting
    /// `target`, each repairing with up to `threads` workers (0 = auto).
    ///
    /// `shards <= 1` keeps the original relation (and its generation)
    /// intact on a single shard — exactly the unsharded engine.
    pub fn new(
        master: Relation,
        target: (AttrId, AttrId),
        rules: Vec<EditingRule>,
        threads: usize,
        shards: usize,
    ) -> Result<Self, BatchError> {
        let plan = ShardPlan::new(shards, &rules);
        let n = plan.shards();
        if n == 1 {
            let order = vec![0u32; master.num_rows()];
            let engine = IncrEngine::new(master, target, rules, threads)?;
            return Ok(ShardedEngine {
                plan,
                base_generation: 0,
                shards: vec![RwLock::new(engine)],
                order: RwLock::new(order),
                routed: AtomicU64::new(0),
                broadcast: AtomicU64::new(0),
            });
        }
        let base_generation = master.generation();
        let mut order = Vec::with_capacity(master.num_rows());
        let mut rows_per: Vec<Vec<usize>> = vec![Vec::new(); n];
        for row in 0..master.num_rows() {
            let shard = match plan.key() {
                Some((_, xm)) => plan.place(&master.value(row, xm)),
                None => 0,
            };
            order.push(shard as u32);
            rows_per[shard].push(row);
        }
        let mut engines = Vec::with_capacity(n);
        for rows in &rows_per {
            let sub = master.gather(rows);
            engines.push(RwLock::new(IncrEngine::new(
                sub,
                target,
                rules.clone(),
                threads,
            )?));
        }
        Ok(ShardedEngine {
            plan,
            base_generation,
            shards: engines,
            order: RwLock::new(order),
            routed: AtomicU64::new(0),
            broadcast: AtomicU64::new(0),
        })
    }

    /// The placement plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Lifetime count of request rows routed to exactly one shard.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Lifetime count of request rows broadcast to every shard.
    pub fn broadcast(&self) -> u64 {
        self.broadcast.load(Ordering::Relaxed)
    }

    /// Repair one batch: route each row by the plan, fan sub-batches out to
    /// their shards (in parallel), and merge in deterministic shard order.
    /// Bitwise identical to the single engine on the same batch; the first
    /// shard error (ascending order) wins, which matters only for the
    /// inherently timing-dependent `DeadlineExceeded`.
    pub fn repair_batch(
        &self,
        batch: &Relation,
        deadline: Option<Instant>,
    ) -> Result<ShardedRepair, BatchError> {
        let n = self.shards.len();
        if n == 1 {
            self.routed
                .fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
            let shard = self.shards[0].read();
            return Ok(run_repair(&shard, batch, deadline)?.into());
        }
        let rows = batch.num_rows();
        let key_x = self.plan.key().map(|(x, _)| x);
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut routes: Vec<Route> = Vec::with_capacity(rows);
        let (mut routed, mut broadcast) = (0u64, 0u64);
        for row in 0..rows {
            let route = match key_x {
                None => Route::To(0),
                Some(x) => self.plan.route(&batch.value(row, x)),
            };
            match route {
                Route::To(s) => {
                    routed += 1;
                    lists[s].push(row);
                }
                Route::Broadcast => {
                    broadcast += 1;
                    for list in &mut lists {
                        list.push(row);
                    }
                }
            }
            routes.push(route);
        }
        self.routed.fetch_add(routed, Ordering::Relaxed);
        self.broadcast.fetch_add(broadcast, Ordering::Relaxed);

        let mut results: Vec<Option<Result<RepairReport, BatchError>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (s, list) in lists.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                let sub = batch.gather(list);
                let shard = &self.shards[s];
                handles.push((
                    s,
                    scope.spawn(move || run_repair(&shard.read(), &sub, deadline)),
                ));
            }
            for (s, handle) in handles {
                results[s] = Some(match handle.join() {
                    Ok(result) => result,
                    Err(panic) => std::panic::resume_unwind(panic),
                });
            }
        });
        let mut reports: Vec<Option<RepairReport>> = Vec::with_capacity(n);
        for result in results {
            match result {
                None => reports.push(None),
                Some(Ok(report)) => reports.push(Some(report)),
                Some(Err(e)) => return Err(e),
            }
        }

        let mut merged = ShardedRepair {
            predictions: vec![None; rows],
            scores: vec![0.0; rows],
            candidates: vec![0; rows],
        };
        let mut filled = vec![false; rows];
        for (s, report) in reports.iter().enumerate() {
            let Some(report) = report else { continue };
            for (local, &row) in lists[s].iter().enumerate() {
                let own = match routes[row] {
                    Route::To(t) => t == s,
                    // All shards answer (None, 0.0, 0) for a NULL-keyed
                    // row; taking the first in ascending order is both
                    // deterministic and exact.
                    Route::Broadcast => !filled[row],
                };
                if own {
                    merged.predictions[row] = report.predictions[local];
                    merged.scores[row] = report.scores[local];
                    merged.candidates[row] = report.candidates[local];
                    filled[row] = true;
                }
            }
        }
        Ok(merged)
    }

    /// Take every write lock (order ledger first, shards ascending) for an
    /// all-or-nothing append. The guard lets the caller preview the
    /// combined post-append master for analysis gates under the *same*
    /// locks the commit will use — no TOCTOU window.
    pub fn begin_append(&self) -> AppendGuard<'_> {
        AppendGuard {
            plan: &self.plan,
            base_generation: self.base_generation,
            order: self.order.write(),
            shards: self.shards.iter().map(|s| s.write()).collect(),
        }
    }

    /// Append without a gate: two-phase validate-then-commit.
    pub fn append_rows(&self, rows: &[Vec<Value>]) -> Result<AppendOutcome, BatchError> {
        self.begin_append().commit(rows)
    }

    /// Take every read lock for consistent aggregate reads.
    pub fn read_view(&self) -> ReadView<'_> {
        ReadView {
            base_generation: self.base_generation,
            order: self.order.read(),
            shards: self.shards.iter().map(|s| s.read()).collect(),
        }
    }

    /// Aggregate shard counters (takes the read locks briefly).
    pub fn shard_stats(&self) -> ShardStats {
        let view = self.read_view();
        let mut rows_max = 0u64;
        let mut rows_total = 0u64;
        for shard in &view.shards {
            let rows = shard.master().num_rows() as u64;
            rows_max = rows_max.max(rows);
            rows_total += rows;
        }
        ShardStats {
            shards: view.shards.len(),
            routed: self.routed(),
            broadcast: self.broadcast(),
            rows_max,
            rows_total,
        }
    }
}

fn run_repair(
    engine: &IncrEngine,
    batch: &Relation,
    deadline: Option<Instant>,
) -> Result<RepairReport, BatchError> {
    match deadline {
        Some(deadline) => engine.repair_batch_deadline(batch, deadline),
        None => engine.repair_batch(batch),
    }
}

/// Rebuild the master as the single engine would see it: rows in global
/// arrival order, codes re-pushed through a builder over the shared
/// schema/pool (no re-interning; generation ends at the row count, which is
/// what builder-built masters report on the serve path anyway).
fn combined(order: &[u32], masters: &[&Relation]) -> Relation {
    if masters.len() == 1 {
        return masters[0].clone();
    }
    let schema = masters[0].schema().clone();
    let pool = masters[0].pool().clone();
    let arity = masters[0].num_attrs();
    let mut builder = RelationBuilder::new(schema, pool);
    let mut cursors = vec![0usize; masters.len()];
    let mut codes: Vec<Code> = vec![0; arity];
    for &shard in order {
        let shard = shard as usize;
        let row = cursors[shard];
        for (attr, slot) in codes.iter_mut().enumerate() {
            *slot = masters[shard].code(row, attr);
        }
        builder.push_codes(&codes);
        cursors[shard] += 1;
    }
    builder.finish()
}

/// All shard write locks, held for the duration of one gated append.
pub struct AppendGuard<'a> {
    plan: &'a ShardPlan,
    base_generation: u64,
    order: RwLockWriteGuard<'a, Vec<u32>>,
    shards: Vec<RwLockWriteGuard<'a, IncrEngine>>,
}

impl AppendGuard<'_> {
    /// The combined master under the held locks.
    pub fn combined_master(&self) -> Relation {
        let masters: Vec<&Relation> = self.shards.iter().map(|s| s.master()).collect();
        combined(&self.order, &masters)
    }

    /// Combined master with `rows` appended — the analysis-gate preview.
    /// `None` if any row fails schema validation; the caller then calls
    /// [`AppendGuard::commit`] anyway and reports its per-row error.
    pub fn preview(&self, rows: &[Vec<Value>]) -> Option<Relation> {
        let mut master = self.combined_master();
        for row in rows {
            master.push_row_ref(row).ok()?;
        }
        Some(master)
    }

    /// Two-phase commit: validate every row in global order (phase 1, so
    /// the first offending row is reported exactly as the single engine
    /// would), then partition and commit per shard (phase 2 — infallible
    /// after phase 1, since `validate_row` is the complete append
    /// precondition and warm group indexes absorb appends in place).
    pub fn commit(mut self, rows: &[Vec<Value>]) -> Result<AppendOutcome, BatchError> {
        let n = self.shards.len();
        if n == 1 {
            let outcome = self.shards[0].append_rows(rows)?;
            self.order.extend(std::iter::repeat_n(0, rows.len()));
            return Ok(outcome);
        }
        for (i, row) in rows.iter().enumerate() {
            self.shards[0]
                .master()
                .validate_row(row)
                .map_err(|e| BatchError::AppendRow {
                    row: i,
                    message: e.to_string(),
                })?;
        }
        let mut per: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
        let mut homes: Vec<u32> = Vec::with_capacity(rows.len());
        for row in rows {
            let shard = match self.plan.key() {
                Some((_, xm)) => self.plan.place(&row[xm]),
                None => 0,
            };
            per[shard].push(row.clone());
            homes.push(shard as u32);
        }
        for (shard, sub) in per.iter().enumerate() {
            if !sub.is_empty() {
                self.shards[shard].append_rows(sub)?;
            }
        }
        self.order.extend(homes);
        let mut master_rows = 0;
        let mut generation = self.base_generation;
        for shard in &self.shards {
            master_rows += shard.master().num_rows();
            generation += shard.generation();
        }
        Ok(AppendOutcome {
            appended: rows.len(),
            master_rows,
            generation,
            // Same warm indexes on every shard (same rule set); report the
            // per-engine count the single path reports.
            indexes_updated: self.shards[0].num_indexes(),
        })
    }
}

/// All shard read locks, for consistent aggregate reads.
pub struct ReadView<'a> {
    base_generation: u64,
    order: RwLockReadGuard<'a, Vec<u32>>,
    shards: Vec<RwLockReadGuard<'a, IncrEngine>>,
}

impl ReadView<'_> {
    /// The combined master in global arrival order.
    pub fn combined_master(&self) -> Relation {
        let masters: Vec<&Relation> = self.shards.iter().map(|s| s.master()).collect();
        combined(&self.order, &masters)
    }

    /// Total master rows across shards.
    pub fn master_rows(&self) -> usize {
        self.shards.iter().map(|s| s.master().num_rows()).sum()
    }

    /// Master rows per shard, ascending shard id.
    pub fn shard_rows(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.master().num_rows()).collect()
    }

    /// Aggregate master generation: what the single engine would report
    /// after the same construction + append history.
    pub fn generation(&self) -> u64 {
        self.base_generation + self.shards.iter().map(|s| s.generation()).sum::<u64>()
    }

    /// Aggregate rule staleness (appends since the rules were installed).
    pub fn staleness(&self) -> u64 {
        self.shards.iter().map(|s| s.staleness()).sum()
    }

    /// Summed incremental-vs-rebuild counters.
    pub fn counters(&self) -> IncrCounters {
        let mut total = IncrCounters::default();
        for shard in &self.shards {
            let c = shard.counters();
            total.incremental_updates += c.incremental_updates;
            total.rebuilds += c.rebuilds;
        }
        total
    }

    /// Summed vote statistics. Exact: every non-NULL-keyed request row is
    /// grouped and probed on exactly one shard, and NULL-keyed rows are
    /// counted on none (their signatures are NO_SIG everywhere).
    pub fn vote_stats(&self) -> VoteStats {
        let mut total = VoteStats::default();
        for shard in &self.shards {
            let v = shard.vote_stats();
            total.rows += v.rows;
            total.probes += v.probes;
        }
        total
    }

    /// Warm group indexes per shard (identical on every shard).
    pub fn num_indexes(&self) -> usize {
        self.shards[0].num_indexes()
    }

    /// Rules installed (identical on every shard).
    pub fn num_rules(&self) -> usize {
        self.shards[0].num_rules()
    }

    /// The installed rule set (identical on every shard).
    pub fn rules(&self) -> &[EditingRule] {
        self.shards[0].rules()
    }

    /// The repair target pair.
    pub fn target(&self) -> (AttrId, AttrId) {
        self.shards[0].target()
    }
}
