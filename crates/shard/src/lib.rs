#![forbid(unsafe_code)]
//! Sharded serving tier for the repair engine: deterministic placement of
//! master rows over N independent [`er_incr::IncrEngine`] shards plus a
//! router that sends each repair request row to exactly the shard that can
//! answer it bitwise-identically to the single-engine path.
//!
//! # Why sharding is exact here
//!
//! The paper's certainty vote is a *per-signature* computation: an input row
//! `t` collects votes from exactly the master rows whose `X_m` projection
//! equals `t[X]` under each rule's LHS list. A shard therefore answers `t`
//! identically to the whole master iff it holds **all** master rows that can
//! match `t` under **any** rule. [`ShardPlan`] guarantees this with a
//! *common routing pair* `(x, x_m)` — an LHS pair present in every rule of
//! the installed set:
//!
//! * master rows are **placed** by a pool-independent FNV-1a hash of the
//!   value at `x_m`;
//! * request rows are **routed** by the same hash of the value at `x`.
//!
//! Any master row matching `t` under any rule satisfies
//! `row[x_m] == t[x]` (the common pair is in every LHS), so equal values
//! hash to the same shard and the routed shard sees every matching row.
//! Unrelated rows that collide into the shard contribute nothing (their
//! signatures differ), and per-rule candidate counts, totals, reciprocal
//! weights, and fold order are those of the single engine — the scores come
//! out bitwise identical, not just semantically equal.
//!
//! Rows with NULL at `x` match nothing under any rule (NULL never equals
//! anything in editing-rule semantics), so they are **broadcast** and the
//! per-shard answers — all `(None, 0.0, 0)` — merge deterministically in
//! ascending shard order. Rule sets with no common LHS pair degrade honestly
//! to a single shard holding everything (`shard_imbalance` reports it).
//!
//! Mutations commit with all shard write locks held in ascending order
//! (two-phase: validate every row globally, then the per-shard appends are
//! infallible), so gates and readers always observe a consistent whole.

mod engine;
mod plan;

pub use engine::{AppendGuard, ReadView, ShardStats, ShardedEngine, ShardedRepair};
pub use plan::{fnv1a, hash_value, Route, ShardPlan};
