//! Deterministic shard placement and routing.
//!
//! Placement must be stable across processes, pools, and shard rebuilds, so
//! it hashes the *value* (tag byte + canonical byte encoding), never the
//! interned code — codes depend on interning order, values do not.

use er_rules::EditingRule;
use er_table::{AttrId, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fold(FNV_OFFSET, bytes)
}

fn fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Canonical FNV-1a hash of a cell value: a type tag byte followed by the
/// value's own bytes, so `Int(3)`, `Float(3.0)` and `Str("3")` — distinct
/// values with distinct codes — hash independently, while equal values
/// always hash equal regardless of which pool interned them.
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => fold(FNV_OFFSET, &[0]),
        Value::Int(i) => fold(fold(FNV_OFFSET, &[1]), &i.to_le_bytes()),
        Value::Float(f) => fold(fold(FNV_OFFSET, &[2]), &f.to_bits().to_le_bytes()),
        Value::Str(s) => fold(fold(FNV_OFFSET, &[3]), s.as_bytes()),
    }
}

/// Where a request row must be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Exactly this shard holds every master row the row can match.
    To(usize),
    /// The row matches nothing anywhere (NULL routing key); ask every shard
    /// and merge in ascending shard order.
    Broadcast,
}

/// The placement function: shard count plus the common LHS routing pair.
///
/// The routing pair `(x, x_m)` is the lexicographically smallest LHS pair
/// shared by *every* rule in the set. If none exists (or the set is empty),
/// the plan is degenerate: everything lives on shard 0 and the other shards
/// idle — still correct, and `shard_imbalance` makes it visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    key: Option<(AttrId, AttrId)>,
}

impl ShardPlan {
    /// Build a plan for `shards` partitions over `rules`. A shard count of
    /// 0 or 1 yields the trivial single-shard plan.
    pub fn new(shards: usize, rules: &[EditingRule]) -> Self {
        let shards = shards.max(1);
        if shards == 1 || rules.is_empty() {
            return ShardPlan { shards, key: None };
        }
        // Rule LHS lists are sorted, so the running intersection stays
        // sorted and `min` is the lexicographically smallest survivor.
        let mut common: Vec<(AttrId, AttrId)> = rules[0].lhs().to_vec();
        for rule in &rules[1..] {
            let lhs = rule.lhs();
            common.retain(|pair| lhs.contains(pair));
            if common.is_empty() {
                break;
            }
        }
        ShardPlan {
            shards,
            key: common.into_iter().min(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The common routing pair `(x, x_m)`, if one exists.
    pub fn key(&self) -> Option<(AttrId, AttrId)> {
        self.key
    }

    /// True when more than one shard was requested but no common LHS pair
    /// exists: everything is placed on shard 0.
    pub fn is_degenerate(&self) -> bool {
        self.shards > 1 && self.key.is_none()
    }

    /// Home shard of a *master* row, given its value at `x_m`. NULL-keyed
    /// master rows get a deterministic home like any other value — they can
    /// never vote (NULL matches nothing), they just need to live somewhere.
    pub fn place(&self, v: &Value) -> usize {
        match self.key {
            None => 0,
            Some(_) => (hash_value(v) % self.shards as u64) as usize,
        }
    }

    /// Route of a *request* row, given its value at `x`.
    pub fn route(&self, v: &Value) -> Route {
        match self.key {
            None => Route::To(0),
            Some(_) if v.is_null() => Route::Broadcast,
            Some(_) => Route::To((hash_value(v) % self.shards as u64) as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hash_value_separates_types_and_is_stable() {
        let int = hash_value(&Value::int(3));
        let float = hash_value(&Value::float(3.0));
        let string = hash_value(&Value::str("3"));
        assert_ne!(int, float);
        assert_ne!(int, string);
        assert_ne!(float, string);
        assert_eq!(string, hash_value(&Value::str("3")));
        assert_eq!(hash_value(&Value::Null), hash_value(&Value::Null));
    }

    fn rule(pairs: &[(AttrId, AttrId)]) -> EditingRule {
        EditingRule::new(pairs.to_vec(), (9, 9), vec![])
    }

    #[test]
    fn common_pair_is_the_smallest_shared_one() {
        let rules = vec![rule(&[(0, 0), (1, 1), (2, 2)]), rule(&[(1, 1), (2, 2)])];
        let plan = ShardPlan::new(4, &rules);
        assert_eq!(plan.key(), Some((1, 1)));
        assert!(!plan.is_degenerate());
    }

    #[test]
    fn disjoint_rules_degrade_to_shard_zero() {
        let rules = vec![rule(&[(0, 0)]), rule(&[(1, 1)])];
        let plan = ShardPlan::new(4, &rules);
        assert_eq!(plan.key(), None);
        assert!(plan.is_degenerate());
        assert_eq!(plan.place(&Value::str("x")), 0);
        assert_eq!(plan.route(&Value::str("x")), Route::To(0));
    }

    #[test]
    fn single_shard_plans_are_trivial() {
        let rules = vec![rule(&[(0, 0)])];
        let plan = ShardPlan::new(1, &rules);
        assert_eq!(plan.key(), None);
        assert!(!plan.is_degenerate());
        assert_eq!(plan.route(&Value::Null), Route::To(0));
    }

    #[test]
    fn routing_agrees_with_placement_and_nulls_broadcast() {
        let rules = vec![rule(&[(2, 3)])];
        let plan = ShardPlan::new(8, &rules);
        for v in [Value::str("HZ"), Value::int(42), Value::float(1.5)] {
            assert_eq!(Route::To(plan.place(&v)), plan.route(&v));
        }
        assert_eq!(plan.route(&Value::Null), Route::Broadcast);
        // NULL master rows still get a home.
        assert!(plan.place(&Value::Null) < 8);
    }
}
