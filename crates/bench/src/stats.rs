//! Small statistics helpers for mean ± std reporting.

use serde::Serialize;

/// Mean and (population) standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl MeanStd {
    /// Render as `m.mm ± s.ss`.
    pub fn fmt2(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.std)
    }
}

/// Mean and standard deviation of `values` (0 ± 0 for an empty slice).
pub fn mean_std(values: &[f64]) -> MeanStd {
    if values.is_empty() {
        return MeanStd {
            mean: 0.0,
            std: 0.0,
        };
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    MeanStd {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample_has_zero_std() {
        let m = mean_std(&[2.0, 2.0, 2.0]);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn known_values() {
        let m = mean_std(&[1.0, 3.0]);
        assert_eq!(m.mean, 2.0);
        assert_eq!(m.std, 1.0);
    }

    #[test]
    fn empty_is_zero() {
        let m = mean_std(&[]);
        assert_eq!(m.mean, 0.0);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn format() {
        assert_eq!(mean_std(&[1.0, 3.0]).fmt2(), "2.00 ± 1.00");
    }
}
