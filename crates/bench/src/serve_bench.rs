//! `serve_bench` — throughput and latency of the er-serve socket mode.
//!
//! Starts an in-process [`TcpServer`] over a Covid scenario with a small
//! hand-built rule set (serving cost is dominated by the vote loop, not by
//! where the rules came from), then drives it with several concurrent
//! clients replaying the scenario's input rows in fixed-size batches.
//! Before any timing, one warm-up client replays the whole request stream
//! and asserts every socket response is **byte-identical** to the pipe
//! front-end over an identically built engine — the number is only worth
//! reporting if the served answers are right. Reports wall-clock throughput
//! plus client-side and server-side p50/p99 latency, and writes
//! `results/serve_bench.json`.
//!
//! Besides the `results/` file, a full (non-`--quick`) run appends one
//! entry to the repo-root `BENCH_serve.json` trajectory file shared with
//! `shard_bench`, so the serving-tier perf delta of every PR — the
//! server-side p50 in particular — is visible in review. Both modes then
//! validate that the trajectory file exists and is well-formed, which is
//! what `scripts/check.sh` and CI rely on.

use crate::trajectory::{append_trajectory, validate_trajectory};
use crate::ExperimentConfig;
use er_datagen::DatasetKind;
use er_rules::EditingRule;
use er_serve::{serve_pipe, RepairEngine, ServeConfig, Server, TcpServer};
use er_table::{Relation, Value};
use serde::Serialize;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// Repo-root perf trajectory artifact shared by the serving-tier benches;
/// one entry appended per full run.
pub(crate) const TRAJECTORY: &str = "BENCH_serve.json";

/// Result of one serve benchmark run (also one trajectory entry).
#[derive(Debug, Clone, Serialize)]
pub struct ServeBench {
    /// Which serving-tier bench produced this entry.
    pub bench: String,
    /// Dataset the server was loaded with.
    pub dataset: String,
    /// Loaded rule count.
    pub rules: usize,
    /// Engine shards behind the server (this bench serves unsharded).
    pub shards: usize,
    /// Repair worker threads (`0` = auto).
    pub threads: usize,
    /// What `available_parallelism` reported on the bench host — the
    /// honest context for any speedup numbers.
    pub host_parallelism: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// Rows per repair request.
    pub rows_per_batch: usize,
    /// Total rows pushed through the server.
    pub total_rows: usize,
    /// Wall-clock duration of the client phase, seconds.
    pub wall_seconds: f64,
    /// Rows repaired per second (aggregate).
    pub rows_per_second: f64,
    /// Requests answered per second (aggregate).
    pub requests_per_second: f64,
    /// Client-observed median round-trip, microseconds.
    pub client_p50_us: u64,
    /// Client-observed 99th-percentile round-trip, microseconds.
    pub client_p99_us: u64,
    /// Server-side median repair latency, microseconds.
    pub server_p50_us: u64,
    /// Server-side 99th-percentile repair latency, microseconds.
    pub server_p99_us: u64,
    /// Total cells the served repairs would change.
    pub repaired_cells: u64,
    /// Whether this was a `--quick` smoke run (quick runs do not enter the
    /// trajectory).
    pub quick: bool,
    /// Wall-clock seconds since the Unix epoch when the run finished.
    pub unix_seconds: u64,
}

pub(crate) fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

pub(crate) fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

pub(crate) fn unix_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn cell_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

/// Pre-render repair request lines over the input, `rows_per_batch` rows
/// each; returns `(line, rows_in_line)` pairs.
pub(crate) fn render_requests(input: &Relation, rows_per_batch: usize) -> Vec<(String, usize)> {
    (0..input.num_rows())
        .collect::<Vec<_>>()
        .chunks(rows_per_batch)
        .map(|chunk| {
            let rows: Vec<Json> = chunk
                .iter()
                .map(|&row| Json::Array(input.row_values(row).iter().map(cell_to_json).collect()))
                .collect();
            let line = serde_json::to_string(&Json::Object(vec![
                ("op".to_string(), Json::Str("repair".into())),
                ("rows".to_string(), Json::Array(rows)),
            ]))
            .unwrap_or_default();
            (line, chunk.len())
        })
        .collect()
}

/// Reference responses for `requests`: one scripted pipe session against
/// `server`, split into lines. Repair responses carry no cross-request
/// state, so line `i` is THE correct answer for request `i` on any
/// front-end and at any concurrency.
pub(crate) fn pipe_reference(server: &Server, requests: &[(String, usize)]) -> Vec<String> {
    let script: String = requests
        .iter()
        .map(|(line, _)| format!("{line}\n"))
        .collect();
    let mut reader = Cursor::new(script.into_bytes());
    let mut out: Vec<u8> = Vec::new();
    if let Err(e) = serve_pipe(server, &mut reader, &mut out) {
        panic!("serve bench: pipe reference session failed: {e}");
    }
    String::from_utf8(out)
        .unwrap_or_else(|e| panic!("serve bench: pipe reference is not UTF-8: {e}"))
        .lines()
        .map(str::to_string)
        .collect()
}

/// Replay every request once on one connection and assert each response is
/// byte-identical to `expected`.
pub(crate) fn assert_identity(addr: SocketAddr, requests: &[(String, usize)], expected: &[String]) {
    assert_eq!(requests.len(), expected.len(), "reference line count");
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => panic!("serve bench: identity client cannot connect: {e}"),
    };
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => panic!("serve bench: identity client cannot clone: {e}"),
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    for ((request, _), want) in requests.iter().zip(expected) {
        if let Err(e) = writeln!(writer, "{request}") {
            panic!("serve bench: identity client write failed: {e}");
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            other => panic!("serve bench: identity client read failed: {other:?}"),
        }
        assert_eq!(
            line.trim_end_matches('\n'),
            want,
            "socket response diverged from the pipe reference"
        );
    }
}

/// Drive `clients` concurrent connections, each replaying `requests`
/// `passes` times; returns (sorted client latencies in µs, total rows).
pub(crate) fn drive_clients(
    addr: SocketAddr,
    requests: &[(String, usize)],
    clients: usize,
    passes: usize,
) -> (Vec<u64>, usize) {
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let requests = requests.to_vec();
            std::thread::spawn(move || -> (Vec<u64>, usize) {
                let mut latencies = Vec::with_capacity(requests.len() * passes);
                let mut rows_sent = 0usize;
                let Ok(stream) = TcpStream::connect(addr) else {
                    return (latencies, rows_sent);
                };
                let _ = stream.set_nodelay(true);
                let Ok(read_half) = stream.try_clone() else {
                    return (latencies, rows_sent);
                };
                let mut reader = BufReader::new(read_half);
                let mut writer = stream;
                let mut line = String::new();
                for _ in 0..passes {
                    for (request, rows) in &requests {
                        let sent = Instant::now();
                        if writeln!(writer, "{request}").is_err() {
                            return (latencies, rows_sent);
                        }
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(n) if n > 0 => {
                                latencies.push(
                                    u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                                rows_sent += rows;
                            }
                            _ => return (latencies, rows_sent),
                        }
                    }
                }
                (latencies, rows_sent)
            })
        })
        .collect();
    let mut client_latencies: Vec<u64> = Vec::new();
    let mut total_rows = 0usize;
    for handle in handles {
        if let Ok((mut lat, rows)) = handle.join() {
            client_latencies.append(&mut lat);
            total_rows += rows;
        }
    }
    client_latencies.sort_unstable();
    (client_latencies, total_rows)
}

/// Drain a TCP server through the protocol so the bench exercises the full
/// lifecycle, then join it.
pub(crate) fn drain_over_protocol(addr: SocketAddr, tcp: TcpServer) {
    if let Ok(stream) = TcpStream::connect(addr) {
        if let Ok(read_half) = stream.try_clone() {
            let mut reader = BufReader::new(read_half);
            let mut writer = stream;
            let mut line = String::new();
            if writeln!(writer, "{{\"op\":\"shutdown\"}}").is_ok() {
                let _ = reader.read_line(&mut line);
            }
        }
    }
    tcp.shutdown();
    tcp.join();
}

/// The shared rule set of the serving-tier benches: every rule anchored on
/// the first candidate LHS pair (so the set has a common routing pair and
/// multi-shard placement is non-degenerate), capped at 12 rules.
pub(crate) fn bench_rules(task: &er_rules::Task) -> Vec<EditingRule> {
    let target = task.target();
    let pairs = task.candidate_lhs_pairs();
    let anchor = match pairs.first() {
        Some(&p) => p,
        None => panic!("serve bench: scenario has no candidate LHS pairs"),
    };
    let mut rules = vec![EditingRule::new(vec![anchor], target, vec![])];
    for &p in &pairs[1..] {
        rules.push(EditingRule::new(vec![anchor, p], target, vec![]));
    }
    rules.truncate(12);
    rules
}

/// Benchmark the serve path; see the module docs.
pub fn serve_bench(cfg: &ExperimentConfig) -> ServeBench {
    println!("== serve_bench: er-serve socket mode over the Covid scenario ==");
    let s = cfg.scenario(DatasetKind::Covid, 1);
    let task = &s.task;
    let rules = bench_rules(task);

    let build_engine = || match RepairEngine::new(task, rules.clone(), cfg.threads) {
        Ok(e) => e,
        Err(e) => {
            // The scenario and rules are constructed above; this is a bug,
            // not an environment failure — surface it loudly.
            panic!("serve_bench: engine construction failed: {e}");
        }
    };
    let engine = build_engine();
    let num_rules = engine.num_rules();

    let clients = 4usize;
    let rows_per_batch = 64usize;
    let config = ServeConfig {
        queue_capacity: 256,
        workers: clients,
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::new(engine, config));
    let tcp = match TcpServer::bind(Arc::clone(&server), "127.0.0.1:0") {
        Ok(t) => t,
        Err(e) => panic!("serve_bench: cannot bind a loopback socket: {e}"),
    };
    let addr = tcp.local_addr();

    // Pre-render the request lines once; every client replays the same
    // stream of batches.
    let requests = render_requests(task.input(), rows_per_batch);
    let passes = if cfg.quick {
        1
    } else {
        3usize.max(cfg.repeats)
    };
    let requests_per_client = requests.len() * passes;

    // Correctness before timing: the socket path must answer byte-for-byte
    // what the pipe front-end answers over an identically built engine.
    let reference_server = Server::new(build_engine(), ServeConfig::default());
    let expected = pipe_reference(&reference_server, &requests);
    assert_identity(addr, &requests, &expected);
    println!(
        "  socket responses byte-identical to the pipe reference ({} requests)",
        requests.len()
    );

    let started = Instant::now();
    let (client_latencies, total_rows) = drive_clients(addr, &requests, clients, passes);
    let wall_seconds = started.elapsed().as_secs_f64();
    drain_over_protocol(addr, tcp);

    let snapshot = server.snapshot();
    let total_requests = client_latencies.len();
    let result = ServeBench {
        bench: "serve_bench".to_string(),
        dataset: s.name.clone(),
        rules: num_rules,
        shards: 1,
        threads: cfg.threads,
        host_parallelism: host_parallelism(),
        clients,
        requests_per_client,
        rows_per_batch,
        total_rows,
        wall_seconds,
        rows_per_second: total_rows as f64 / wall_seconds.max(1e-9),
        requests_per_second: total_requests as f64 / wall_seconds.max(1e-9),
        client_p50_us: percentile(&client_latencies, 0.50),
        client_p99_us: percentile(&client_latencies, 0.99),
        server_p50_us: snapshot.p50_us,
        server_p99_us: snapshot.p99_us,
        repaired_cells: snapshot.repaired_cells,
        quick: cfg.quick,
        unix_seconds: unix_seconds(),
    };
    println!(
        "  {} clients × {} requests × {} rows: {:.2}s, {:.0} rows/s, {:.0} req/s",
        result.clients,
        result.requests_per_client,
        result.rows_per_batch,
        result.wall_seconds,
        result.rows_per_second,
        result.requests_per_second
    );
    println!(
        "  latency: client p50={}us p99={}us, server p50={}us p99={}us, fixed cells={}",
        result.client_p50_us,
        result.client_p99_us,
        result.server_p50_us,
        result.server_p99_us,
        result.repaired_cells
    );
    cfg.write_json("serve_bench", &result);
    if result.quick {
        println!("  [--quick: not appended to {TRAJECTORY}]");
    } else {
        append_trajectory(TRAJECTORY, "serve", &result);
    }
    match validate_trajectory(
        TRAJECTORY,
        &["shards", "total_rows", "rows_per_second", "server_p50_us"],
    ) {
        Ok(entries) => println!("  [{TRAJECTORY}: {entries} trajectory entries, well-formed]"),
        Err(e) => panic!("serve_bench: {TRAJECTORY} is missing or malformed: {e}"),
    }
    result
}
