//! `serve_bench` — throughput and latency of the er-serve socket mode.
//!
//! Starts an in-process [`TcpServer`] over a Covid scenario with a small
//! hand-built rule set (serving cost is dominated by the vote loop, not by
//! where the rules came from), then drives it with several concurrent
//! clients replaying the scenario's input rows in fixed-size batches.
//! Reports wall-clock throughput plus client-side and server-side p50/p99
//! latency, and writes `results/serve_bench.json`.

use crate::ExperimentConfig;
use er_datagen::DatasetKind;
use er_rules::EditingRule;
use er_serve::{RepairEngine, ServeConfig, Server, TcpServer};
use er_table::Value;
use serde::Serialize;
use serde_json::Value as Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Result of one serve benchmark run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBench {
    /// Dataset the server was loaded with.
    pub dataset: String,
    /// Loaded rule count.
    pub rules: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// Rows per repair request.
    pub rows_per_batch: usize,
    /// Total rows pushed through the server.
    pub total_rows: usize,
    /// Wall-clock duration of the client phase, seconds.
    pub wall_seconds: f64,
    /// Rows repaired per second (aggregate).
    pub rows_per_second: f64,
    /// Requests answered per second (aggregate).
    pub requests_per_second: f64,
    /// Client-observed median round-trip, microseconds.
    pub client_p50_us: u64,
    /// Client-observed 99th-percentile round-trip, microseconds.
    pub client_p99_us: u64,
    /// Server-side median repair latency, microseconds.
    pub server_p50_us: u64,
    /// Server-side 99th-percentile repair latency, microseconds.
    pub server_p99_us: u64,
    /// Total cells the served repairs would change.
    pub repaired_cells: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn cell_to_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

/// Benchmark the serve path; see the module docs.
pub fn serve_bench(cfg: &ExperimentConfig) -> ServeBench {
    println!("== serve_bench: er-serve socket mode over the Covid scenario ==");
    let s = cfg.scenario(DatasetKind::Covid, 1);
    let task = &s.task;
    let target = task.target();

    // Single-attribute rules over every matched LHS pair, plus adjacent
    // two-attribute rules for index diversity.
    let pairs = task.candidate_lhs_pairs();
    let mut rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    for window in pairs.windows(2) {
        rules.push(EditingRule::new(window.to_vec(), target, vec![]));
    }
    rules.truncate(12);

    let engine = match RepairEngine::new(task, rules, cfg.threads) {
        Ok(e) => e,
        Err(e) => {
            // The scenario and rules are constructed above; this is a bug,
            // not an environment failure — surface it loudly.
            panic!("serve_bench: engine construction failed: {e}");
        }
    };
    let num_rules = engine.num_rules();

    let clients = 4usize;
    let rows_per_batch = 64usize;
    let config = ServeConfig {
        queue_capacity: 256,
        workers: clients,
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::new(engine, config));
    let tcp = match TcpServer::bind(Arc::clone(&server), "127.0.0.1:0") {
        Ok(t) => t,
        Err(e) => panic!("serve_bench: cannot bind a loopback socket: {e}"),
    };
    let addr = tcp.local_addr();

    // Pre-render the request lines once; every client replays the same
    // stream of batches.
    let input = task.input();
    let requests: Vec<(String, usize)> = (0..input.num_rows())
        .collect::<Vec<_>>()
        .chunks(rows_per_batch)
        .map(|chunk| {
            let rows: Vec<Json> = chunk
                .iter()
                .map(|&row| Json::Array(input.row_values(row).iter().map(cell_to_json).collect()))
                .collect();
            let line = serde_json::to_string(&Json::Object(vec![
                ("op".to_string(), Json::Str("repair".into())),
                ("rows".to_string(), Json::Array(rows)),
            ]))
            .unwrap_or_default();
            (line, chunk.len())
        })
        .collect();
    let passes = 3usize.max(cfg.repeats);
    let requests_per_client = requests.len() * passes;

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let requests = requests.clone();
            std::thread::spawn(move || -> (Vec<u64>, usize) {
                let mut latencies = Vec::with_capacity(requests.len() * passes);
                let mut rows_sent = 0usize;
                let Ok(stream) = TcpStream::connect(addr) else {
                    return (latencies, rows_sent);
                };
                let _ = stream.set_nodelay(true);
                let Ok(read_half) = stream.try_clone() else {
                    return (latencies, rows_sent);
                };
                let mut reader = BufReader::new(read_half);
                let mut writer = stream;
                let mut line = String::new();
                for _ in 0..passes {
                    for (request, rows) in &requests {
                        let sent = Instant::now();
                        if writeln!(writer, "{request}").is_err() {
                            return (latencies, rows_sent);
                        }
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(n) if n > 0 => {
                                latencies.push(
                                    u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                                rows_sent += rows;
                            }
                            _ => return (latencies, rows_sent),
                        }
                    }
                }
                (latencies, rows_sent)
            })
        })
        .collect();
    let mut client_latencies: Vec<u64> = Vec::new();
    let mut total_rows = 0usize;
    for handle in handles {
        if let Ok((mut lat, rows)) = handle.join() {
            client_latencies.append(&mut lat);
            total_rows += rows;
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();

    // Drain through the protocol so the bench exercises the full lifecycle.
    if let Ok(stream) = TcpStream::connect(addr) {
        if let Ok(read_half) = stream.try_clone() {
            let mut reader = BufReader::new(read_half);
            let mut writer = stream;
            let mut line = String::new();
            if writeln!(writer, "{{\"op\":\"shutdown\"}}").is_ok() {
                let _ = reader.read_line(&mut line);
            }
        }
    }
    tcp.shutdown();
    tcp.join();

    client_latencies.sort_unstable();
    let snapshot = server.snapshot();
    let total_requests = client_latencies.len();
    let result = ServeBench {
        dataset: s.name.clone(),
        rules: num_rules,
        clients,
        requests_per_client,
        rows_per_batch,
        total_rows,
        wall_seconds,
        rows_per_second: total_rows as f64 / wall_seconds.max(1e-9),
        requests_per_second: total_requests as f64 / wall_seconds.max(1e-9),
        client_p50_us: percentile(&client_latencies, 0.50),
        client_p99_us: percentile(&client_latencies, 0.99),
        server_p50_us: snapshot.p50_us,
        server_p99_us: snapshot.p99_us,
        repaired_cells: snapshot.repaired_cells,
    };
    println!(
        "  {} clients × {} requests × {} rows: {:.2}s, {:.0} rows/s, {:.0} req/s",
        result.clients,
        result.requests_per_client,
        result.rows_per_batch,
        result.wall_seconds,
        result.rows_per_second,
        result.requests_per_second
    );
    println!(
        "  latency: client p50={}us p99={}us, server p50={}us p99={}us, fixed cells={}",
        result.client_p50_us,
        result.client_p99_us,
        result.server_p50_us,
        result.server_p99_us,
        result.repaired_cells
    );
    cfg.write_json("serve_bench", &result);
    result
}
