#![forbid(unsafe_code)]
//! # er-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation (§V). Each runner
//! prints the same rows/series the paper reports and returns a
//! serde-serializable result that the `experiments` binary also writes to
//! `results/<id>.json`.
//!
//! | id | paper artefact |
//! |----|----------------|
//! | `table1` | Table I — dataset summary |
//! | `table2` | Table II — rule length statistics |
//! | `table3` | Table III — repair P/R/F1 per method |
//! | `fig6`   | Fig. 6 — varying noise rate (Adult) |
//! | `fig7`   | Fig. 7 — varying duplicate rate |
//! | `fig8`   | Fig. 8 — varying input size |
//! | `fig9`   | Fig. 9 — varying master size |
//! | `fig10`  | Fig. 10 — incremental input data (RLMiner-ft) |
//! | `fig11`  | Fig. 11 — incremental master data (RLMiner-ft) |
//! | `fig12`  | Fig. 12 — training & inference time |
//! | `ablate` | design-choice ablations (reward shaping, global mask, θ) |
//!
//! Scales: `Scale::Small` (default) divides the heavy datasets (Adult,
//! Nursery) by 16 and keeps Covid/Location at their already-small paper
//! sizes, so `experiments all` finishes on a laptop; `Scale::Paper`
//! restores everything. The *relative* behaviour of the miners (who wins,
//! where the crossovers are) is preserved at both scales.

pub mod incr_bench;
pub mod ingest_bench;
pub mod methods;
pub mod repair_bench;
pub mod runners;
pub mod serve_bench;
pub mod shard_bench;
pub mod stats;
pub mod trajectory;

pub use incr_bench::{incr_bench, IncrBench};
pub use ingest_bench::{ingest_bench, IngestBench};
pub use methods::{ctane_method, enuminer_method, rlminer_method, MethodOutcome};
pub use repair_bench::{repair_bench, RepairBench};
pub use runners::*;
pub use serve_bench::{serve_bench, ServeBench};
pub use shard_bench::{shard_bench, ShardBench};
pub use stats::{mean_std, MeanStd};
pub use trajectory::{append_trajectory, validate_trajectory};

use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use serde::Serialize;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's dataset sizes (EnuMiner runs can take a long time).
    Paper,
    /// Heavy datasets divided by 16 — same relative behaviour, laptop-fast.
    Small,
}

/// Global experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset sizing.
    pub scale: Scale,
    /// Repetitions for mean ± std rows (the paper uses 5).
    pub repeats: usize,
    /// RLMiner training steps (paper: 5000).
    pub train_steps: usize,
    /// Safety valve on EnuMiner candidate evaluations (None = exhaustive).
    pub enu_budget: Option<usize>,
    /// Worker threads for the miners (`0` = auto: `ER_THREADS` or
    /// sequential). Mining results are identical at any thread count.
    pub threads: usize,
    /// Where JSON results are written.
    pub out_dir: std::path::PathBuf,
    /// Smoke-test mode (`--quick`): runners shrink their workloads, and
    /// `repair_bench` skips appending to the `BENCH_repair.json` trajectory.
    pub quick: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::Small,
            repeats: 3,
            train_steps: 5000,
            enu_budget: Some(1_000_000),
            threads: 0,
            out_dir: std::path::PathBuf::from("results"),
            quick: false,
        }
    }
}

impl ExperimentConfig {
    /// The paper-faithful configuration (`--paper-scale`).
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: Scale::Paper,
            repeats: 5,
            enu_budget: None,
            ..Default::default()
        }
    }

    /// A fast smoke configuration (`--quick`): 1/16 sizes, short training.
    pub fn quick() -> Self {
        ExperimentConfig {
            repeats: 2,
            train_steps: 2000,
            enu_budget: Some(200_000),
            quick: true,
            ..Default::default()
        }
    }

    /// The scenario config for `kind` at this scale, seeded by `seed`.
    pub fn scenario_config(&self, kind: DatasetKind, seed: u64) -> ScenarioConfig {
        let paper = kind.paper_config();
        let divide = |v: usize, by: usize, floor: usize| (v / by).max(floor);
        let sized = match (self.scale, kind) {
            (Scale::Paper, _) => paper,
            // Covid and Location are already small in the paper.
            (Scale::Small, DatasetKind::Covid) | (Scale::Small, DatasetKind::Location) => paper,
            (Scale::Small, _) => ScenarioConfig {
                input_size: divide(paper.input_size, 16, 500),
                master_size: divide(paper.master_size, 16, 250),
                ..paper
            },
        };
        ScenarioConfig { seed, ..sized }
    }

    /// Build a scenario for `kind` with this config's scale.
    pub fn scenario(&self, kind: DatasetKind, seed: u64) -> Scenario {
        kind.build(self.scenario_config(kind, seed))
    }

    /// Write a result as pretty JSON under `out_dir`.
    pub fn write_json<T: Serialize>(&self, id: &str, value: &T) {
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!("warn: cannot create {}: {e}", self.out_dir.display());
            return;
        }
        let path = self.out_dir.join(format!("{id}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warn: cannot write {}: {e}", path.display());
                } else {
                    println!("[saved {}]", path.display());
                }
            }
            Err(e) => eprintln!("warn: cannot serialize {id}: {e}"),
        }
    }
}
