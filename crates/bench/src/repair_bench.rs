//! `repair_bench` — throughput of the signature-batched repair hot path.
//!
//! Builds a large synthetic batch with a *skewed* signature distribution
//! (many rows per popular city, a long tail of rare ones — the regime the
//! signature batching exploits), runs [`er_rules::BatchRepairer`] through
//! both its production path and the row-at-a-time reference kept behind the
//! `reference-path` feature, asserts the two reports are **byte-identical**,
//! and reports rows/s, per-batch p50/p99 latency, and the speedup.
//!
//! Besides `results/repair_bench.json`, a full (non-`--quick`) run appends
//! one entry to the repo-root `BENCH_repair.json` trajectory file, so the
//! perf delta of every PR is visible in review. Both modes then validate
//! that the trajectory file exists and is well-formed, which is what
//! `scripts/check.sh` and CI rely on.

use crate::trajectory::{append_trajectory, validate_trajectory};
use crate::ExperimentConfig;
use er_rules::{BatchRepairer, Condition, EditingRule, RepairReport};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Repo-root perf trajectory artifact; one entry appended per full run.
const TRAJECTORY: &str = "BENCH_repair.json";

/// Result of one repair benchmark run (also one trajectory entry).
#[derive(Debug, Clone, Serialize)]
pub struct RepairBench {
    /// Rows in the synthetic input batch.
    pub rows: usize,
    /// Rules in the loaded set.
    pub rules: usize,
    /// Distinct `(X, X_m)` LHS groups those rules collapse to.
    pub lhs_groups: usize,
    /// Distinct signature probes one repair performs (all groups).
    pub probes_per_batch: u64,
    /// Timed iterations of the batched path.
    pub iters: usize,
    /// Batched path: rows repaired per second.
    pub rows_per_second: f64,
    /// Batched path: median per-batch latency, microseconds.
    pub p50_us: u64,
    /// Batched path: 99th-percentile per-batch latency, microseconds.
    pub p99_us: u64,
    /// Timed iterations of the row-at-a-time reference path.
    pub reference_iters: usize,
    /// Reference path: rows repaired per second.
    pub reference_rows_per_second: f64,
    /// Batched throughput over reference throughput.
    pub speedup: f64,
    /// Worker threads (`0` = auto).
    pub threads: usize,
    /// Whether this was a `--quick` smoke run (quick runs do not enter the
    /// trajectory).
    pub quick: bool,
    /// Wall-clock seconds since the Unix epoch when the run finished.
    pub unix_seconds: u64,
}

/// The skewed synthetic workload: a master with a known vote distribution
/// per (city, region) and an input batch whose city popularity follows a
/// quadratic skew — a few signatures cover most rows, with a long tail.
fn workload(rows: usize, seed: u64) -> (Relation, Relation) {
    let cities = 512usize;
    let regions = 32usize;
    let infections = ["patient", "imports", "flu", "none", "suspect", "cleared"];
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Region"),
            Attribute::categorical("Case"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::categorical("Region"),
            Attribute::categorical("Infection"),
        ],
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bm = RelationBuilder::new(m_schema, Arc::clone(&pool));
    for city in 0..cities {
        let region = city % regions;
        // 2–5 master rows per city with a city-dependent majority value, so
        // votes have real distributions to sum and a clear winner to find.
        for _ in 0..rng.gen_range(2..6) {
            let inf = if rng.gen_range(0..10) < 7 {
                infections[city % infections.len()]
            } else {
                infections[rng.gen_range(0..infections.len())]
            };
            bm.push_row(vec![
                Value::str(format!("C{city}")),
                Value::str(format!("R{region}")),
                Value::str(inf),
            ])
            .unwrap_or_else(|e| panic!("repair_bench: master row rejected: {e}"));
        }
    }
    let master = bm.finish();

    let mut b = RelationBuilder::new(in_schema, pool);
    for _ in 0..rows {
        // Quadratic skew: city 0 is ~2*sqrt(cities) more popular than the
        // tail, and most probability mass sits on a handful of signatures.
        let u: f64 = rng.gen_range(0.0..1.0);
        let city = ((u * u) * cities as f64) as usize;
        let region = city % regions;
        // A few percent NULL keys exercise the grouping filter.
        let city_cell = if rng.gen_range(0..100) < 3 {
            Value::Null
        } else {
            Value::str(format!("C{city}"))
        };
        b.push_row(vec![
            city_cell,
            Value::str(format!("R{region}")),
            Value::Null,
        ])
        .unwrap_or_else(|e| panic!("repair_bench: input row rejected: {e}"));
    }
    (b.finish(), master)
}

/// Six rules across three LHS groups, mixing pattern-free and pattern
/// rules, so the bench exercises probe dedup and the per-rule fan-out.
fn bench_rules(input: &Relation) -> Vec<EditingRule> {
    let r3 = input
        .pool()
        .code_of(&Value::str("R3"))
        .unwrap_or_else(|| panic!("repair_bench: region R3 missing from the workload"));
    let target = (2, 2);
    vec![
        EditingRule::new(vec![(0, 0)], target, vec![]),
        EditingRule::new(vec![(0, 0)], target, vec![Condition::eq(1, r3)]),
        EditingRule::new(vec![(1, 1)], target, vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], target, vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], target, vec![Condition::eq(1, r3)]),
        EditingRule::new(vec![(1, 1)], target, vec![Condition::eq(1, r3)]),
    ]
}

fn assert_bitwise_equal(batched: &RepairReport, reference: &RepairReport) {
    assert_eq!(
        batched.predictions, reference.predictions,
        "repair_bench: batched predictions diverge from the reference path"
    );
    let bits = |r: &RepairReport| r.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(batched),
        bits(reference),
        "repair_bench: batched scores are not byte-identical to the reference path"
    );
    assert_eq!(batched.candidates, reference.candidates);
    assert_eq!(batched.rules_applied, reference.rules_applied);
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Benchmark the signature-batched repair path; see the module docs.
pub fn repair_bench(cfg: &ExperimentConfig) -> RepairBench {
    println!("== repair_bench: signature-batched vs row-at-a-time repair ==");
    let (rows, iters, reference_iters) = if cfg.quick {
        (8_192usize, 5usize, 2usize)
    } else {
        (65_536usize, 20usize, 4usize)
    };
    let (input, master) = workload(rows, 7);
    let rules = bench_rules(&input);
    let repairer = BatchRepairer::new(master, (2, 2), rules, cfg.threads)
        .unwrap_or_else(|e| panic!("repair_bench: repairer construction failed: {e}"));

    // Correctness first: the two paths must agree bit for bit before any
    // number is worth reporting.
    let batched_report = repairer
        .repair_batch(&input)
        .unwrap_or_else(|e| panic!("repair_bench: batched repair failed: {e}"));
    let reference_report = repairer
        .repair_batch_reference(&input)
        .unwrap_or_else(|e| panic!("repair_bench: reference repair failed: {e}"));
    assert_bitwise_equal(&batched_report, &reference_report);
    let probes_per_batch = repairer.vote_stats().probes;

    // Warm-up already happened above; now time the batched path.
    let mut latencies: Vec<u64> = Vec::with_capacity(iters);
    let batched_started = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        let report = repairer
            .repair_batch(&input)
            .unwrap_or_else(|e| panic!("repair_bench: batched repair failed: {e}"));
        latencies.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
        assert_eq!(report.predictions.len(), rows);
    }
    let batched_seconds = batched_started.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let reference_started = Instant::now();
    for _ in 0..reference_iters {
        repairer
            .repair_batch_reference(&input)
            .unwrap_or_else(|e| panic!("repair_bench: reference repair failed: {e}"));
    }
    let reference_seconds = reference_started.elapsed().as_secs_f64();

    let rows_per_second = (rows * iters) as f64 / batched_seconds.max(1e-9);
    let reference_rows_per_second = (rows * reference_iters) as f64 / reference_seconds.max(1e-9);
    let result = RepairBench {
        rows,
        rules: repairer.rules().len(),
        lhs_groups: repairer.num_lhs_groups(),
        probes_per_batch,
        iters,
        rows_per_second,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        reference_iters,
        reference_rows_per_second,
        speedup: rows_per_second / reference_rows_per_second.max(1e-9),
        threads: cfg.threads,
        quick: cfg.quick,
        unix_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    };
    println!(
        "  {} rows × {} rules ({} LHS groups, {} probes/batch): batched {:.0} rows/s (p50={}us p99={}us)",
        result.rows,
        result.rules,
        result.lhs_groups,
        result.probes_per_batch,
        result.rows_per_second,
        result.p50_us,
        result.p99_us
    );
    println!(
        "  reference {:.0} rows/s over {} iters -> speedup {:.1}x (reports byte-identical)",
        result.reference_rows_per_second, result.reference_iters, result.speedup
    );
    cfg.write_json("repair_bench", &result);
    if result.quick {
        println!("  [--quick: not appended to {TRAJECTORY}]");
    } else {
        append_trajectory(TRAJECTORY, "repair_bench", &result);
    }
    match validate_trajectory(
        TRAJECTORY,
        &["rows", "rows_per_second", "p50_us", "p99_us", "speedup"],
    ) {
        Ok(entries) => println!("  [{TRAJECTORY}: {entries} trajectory entries, well-formed]"),
        Err(e) => panic!("repair_bench: {TRAJECTORY} is missing or malformed: {e}"),
    }
    result
}
