//! `shard_bench` — scaling of the sharded serving tier.
//!
//! Builds the same Covid serving workload as `serve_bench`, then serves it
//! at 1, 2, and 8 engine shards. For every shard count the full request
//! stream is first replayed through the socket and asserted
//! **byte-identical** to the pipe front-end over an unsharded engine —
//! sharding is a layout optimisation and must never change one byte of an
//! answer — and only then timed with concurrent clients.
//!
//! Each full (non-`--quick`) run appends one entry per shard count to the
//! repo-root `BENCH_serve.json` trajectory shared with `serve_bench`,
//! carrying `speedup_vs_one_shard` and the host's `available_parallelism`:
//! on a single-core container an honest ~1× is the expected reading, and
//! the parallelism field says so.

use crate::serve_bench::{
    assert_identity, bench_rules, drain_over_protocol, drive_clients, host_parallelism, percentile,
    pipe_reference, render_requests, unix_seconds, TRAJECTORY,
};
use crate::trajectory::{append_trajectory, validate_trajectory};
use crate::ExperimentConfig;
use er_datagen::DatasetKind;
use er_serve::{RepairEngine, ServeConfig, Server, TcpServer};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Result of one shard count's run (also one trajectory entry).
#[derive(Debug, Clone, Serialize)]
pub struct ShardBench {
    /// Which serving-tier bench produced this entry.
    pub bench: String,
    /// Dataset the server was loaded with.
    pub dataset: String,
    /// Loaded rule count.
    pub rules: usize,
    /// Engine shards behind the server.
    pub shards: usize,
    /// Repair worker threads (`0` = auto).
    pub threads: usize,
    /// What `available_parallelism` reported on the bench host — the
    /// honest context for `speedup_vs_one_shard`.
    pub host_parallelism: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// Total rows pushed through the server.
    pub total_rows: usize,
    /// Wall-clock duration of the client phase, seconds.
    pub wall_seconds: f64,
    /// Rows repaired per second (aggregate).
    pub rows_per_second: f64,
    /// This shard count's throughput over the 1-shard run's.
    pub speedup_vs_one_shard: f64,
    /// Client-observed median round-trip, microseconds.
    pub client_p50_us: u64,
    /// Server-side median repair latency, microseconds.
    pub server_p50_us: u64,
    /// Server-side 99th-percentile repair latency, microseconds.
    pub server_p99_us: u64,
    /// Rows the sharded router sent to exactly one shard.
    pub shard_routed: u64,
    /// Rows broadcast to every shard (NULL routing key).
    pub shard_broadcast: u64,
    /// Whether this was a `--quick` smoke run (quick runs do not enter the
    /// trajectory).
    pub quick: bool,
    /// Wall-clock seconds since the Unix epoch when the run finished.
    pub unix_seconds: u64,
}

/// Benchmark the sharded serving tier; see the module docs.
pub fn shard_bench(cfg: &ExperimentConfig) -> Vec<ShardBench> {
    println!("== shard_bench: sharded serving tier at 1/2/8 shards ==");
    let s = cfg.scenario(DatasetKind::Covid, 1);
    let task = &s.task;
    let rules = bench_rules(task);

    let clients = 4usize;
    let rows_per_batch = 64usize;
    let requests = render_requests(task.input(), rows_per_batch);
    let passes = if cfg.quick {
        1
    } else {
        3usize.max(cfg.repeats)
    };

    // The cross-shard reference: the pipe front-end over an unsharded
    // engine. Every shard count must reproduce these bytes.
    let build_engine =
        |shards: usize| match RepairEngine::with_shards(task, rules.clone(), cfg.threads, shards) {
            Ok(e) => e,
            Err(e) => panic!("shard_bench: engine construction failed at {shards} shards: {e}"),
        };
    let reference_server = Server::new(build_engine(1), ServeConfig::default());
    let expected = pipe_reference(&reference_server, &requests);

    let mut results: Vec<ShardBench> = Vec::with_capacity(SHARD_COUNTS.len());
    for shards in SHARD_COUNTS {
        let engine = build_engine(shards);
        let num_rules = engine.num_rules();
        let config = ServeConfig {
            queue_capacity: 256,
            workers: clients,
            ..ServeConfig::default()
        };
        let server = Arc::new(Server::new(engine, config));
        let tcp = match TcpServer::bind(Arc::clone(&server), "127.0.0.1:0") {
            Ok(t) => t,
            Err(e) => panic!("shard_bench: cannot bind a loopback socket: {e}"),
        };
        let addr = tcp.local_addr();

        // Correctness before timing, at every shard count.
        assert_identity(addr, &requests, &expected);

        let started = Instant::now();
        let (client_latencies, total_rows) = drive_clients(addr, &requests, clients, passes);
        let wall_seconds = started.elapsed().as_secs_f64();
        drain_over_protocol(addr, tcp);

        let snapshot = server.snapshot();
        let rows_per_second = total_rows as f64 / wall_seconds.max(1e-9);
        let speedup = match results.first() {
            Some(base) => rows_per_second / base.rows_per_second.max(1e-9),
            None => 1.0,
        };
        let result = ShardBench {
            bench: "shard_bench".to_string(),
            dataset: s.name.clone(),
            rules: num_rules,
            shards,
            threads: cfg.threads,
            host_parallelism: host_parallelism(),
            clients,
            requests_per_client: requests.len() * passes,
            total_rows,
            wall_seconds,
            rows_per_second,
            speedup_vs_one_shard: speedup,
            client_p50_us: percentile(&client_latencies, 0.50),
            server_p50_us: snapshot.p50_us,
            server_p99_us: snapshot.p99_us,
            shard_routed: snapshot.shard_routed,
            shard_broadcast: snapshot.shard_broadcast,
            quick: cfg.quick,
            unix_seconds: unix_seconds(),
        };
        println!(
            "  {} shard(s): {:.2}s, {:.0} rows/s ({:.2}x vs 1 shard), server p50={}us p99={}us, routed={} broadcast={}",
            result.shards,
            result.wall_seconds,
            result.rows_per_second,
            result.speedup_vs_one_shard,
            result.server_p50_us,
            result.server_p99_us,
            result.shard_routed,
            result.shard_broadcast
        );
        results.push(result);
    }
    println!(
        "  responses byte-identical across shard counts {SHARD_COUNTS:?} (host_parallelism={})",
        host_parallelism()
    );

    cfg.write_json("shard_bench", &results);
    if cfg.quick {
        println!("  [--quick: not appended to {TRAJECTORY}]");
    } else {
        for result in &results {
            append_trajectory(TRAJECTORY, "serve", result);
        }
    }
    match validate_trajectory(
        TRAJECTORY,
        &["shards", "total_rows", "rows_per_second", "server_p50_us"],
    ) {
        Ok(entries) => println!("  [{TRAJECTORY}: {entries} trajectory entries, well-formed]"),
        Err(e) => panic!("shard_bench: {TRAJECTORY} is missing or malformed: {e}"),
    }
    results
}
