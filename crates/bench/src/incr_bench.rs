//! `incr_bench` — incremental master maintenance vs. full rebuild.
//!
//! The paper's incremental-master experiment (Fig. 11, §V-D3) grows the
//! master relation and fine-tunes the agent instead of retraining; the
//! serving-side analogue implemented by `er-incr` grows the master *in
//! place*, delta-updating the warmed indexes instead of rebuilding them.
//! This runner measures that trade directly on the Covid scenario:
//!
//! 1. split the master into a base prefix and an append delta,
//! 2. time [`IncrEngine::append_rows`] of the delta against a warm engine
//!    vs. a from-scratch [`BatchRepairer::new`] over the grown master,
//! 3. prove both ends serve the *identical* repair report,
//! 4. show the ER007 staleness lint firing on the grown engine, then
//!    clearing after an RLMiner-ft fine-tune + [`IncrEngine::refresh_rules`].
//!
//! Writes `results/incr_bench.json`.

use crate::ExperimentConfig;
use er_datagen::DatasetKind;
use er_incr::IncrEngine;
use er_rlminer::{RlMiner, RlMinerConfig};
use er_rules::{BatchRepairer, EditingRule, RepairReport};
use er_table::Value;
use serde::Serialize;
use std::time::Instant;

/// Result of one incremental-maintenance benchmark run.
#[derive(Debug, Clone, Serialize)]
pub struct IncrBench {
    /// Dataset the engine was loaded with.
    pub dataset: String,
    /// Rules in the warm engine during the timing phase.
    pub rules: usize,
    /// Warm indexes delta-updated per append.
    pub indexes: usize,
    /// Master rows before the append.
    pub base_master_rows: usize,
    /// Rows appended per timed iteration.
    pub appended_rows: usize,
    /// Timed iterations per side.
    pub repeats: usize,
    /// Mean time to delta-update the warm engine, microseconds.
    pub incremental_mean_us: f64,
    /// Mean time to rebuild the repairer over the grown master, microseconds.
    pub rebuild_mean_us: f64,
    /// `rebuild_mean_us / incremental_mean_us` — how much the delta path wins.
    pub speedup: f64,
    /// Whether the appended engine and a fresh rebuild produced the exact
    /// same repair report over the scenario input.
    pub reports_identical: bool,
    /// Engine staleness (generations) right after the append.
    pub staleness_after_append: u64,
    /// Whether ER007 fired on the grown-but-unrefreshed rule set.
    pub er007_fired: bool,
    /// Whether ER007 went quiet after fine-tuning + refreshing the rules.
    pub er007_clear_after_refresh: bool,
    /// RLMiner-ft fine-tuning steps over the grown scenario.
    pub finetune_steps: usize,
    /// RLMiner-ft fine-tuning seconds.
    pub finetune_seconds: f64,
    /// Rules installed by the post-fine-tune refresh.
    pub refreshed_rules: usize,
}

fn reports_equal(a: &RepairReport, b: &RepairReport) -> bool {
    a.predictions == b.predictions
        && a.scores == b.scores
        && a.candidates == b.candidates
        && a.rules_applied == b.rules_applied
}

/// Benchmark incremental maintenance; see the module docs.
pub fn incr_bench(cfg: &ExperimentConfig) -> IncrBench {
    println!("== incr_bench: er-incr append vs. full rebuild (Covid) ==");
    let s = cfg.scenario(DatasetKind::Covid, 1);
    let target = s.task.target();
    let full_master = s.task.master();
    let full_rows = full_master.num_rows();
    // Appends arrive in batches that are small relative to the master —
    // that is the regime delta maintenance exists for. A ~1/16 delta keeps
    // the comparison honest while still being large enough to time.
    let base_rows = full_rows - (full_rows / 16).max(16).min(full_rows / 2);
    let base = s.with_master_prefix(base_rows);
    let delta: Vec<Vec<Value>> = (base_rows..full_rows)
        .map(|row| full_master.row_values(row))
        .collect();

    // The same hand-built rule shape as serve_bench: timing is about index
    // maintenance, not where the rules came from.
    let pairs = base.task.candidate_lhs_pairs();
    let mut rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    for window in pairs.windows(2) {
        rules.push(EditingRule::new(window.to_vec(), target, vec![]));
    }
    rules.truncate(12);

    let build_engine = || match IncrEngine::new(
        base.task.master().clone(),
        target,
        rules.clone(),
        cfg.threads,
    ) {
        Ok(e) => e,
        // The scenario and rules are constructed above; failing to warm the
        // engine is a bug, not an environment problem.
        Err(e) => panic!("incr_bench: engine construction failed: {e}"),
    };

    let repeats = (cfg.repeats * 16).max(48);
    let mut incremental_us = Vec::with_capacity(repeats);
    let mut rebuild_us = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        // Delta path: the engine is warmed over the base outside the timer;
        // only the append (validate + push + per-index delta update) counts.
        let mut engine = build_engine();
        let started = Instant::now();
        if let Err(e) = engine.append_rows(&delta) {
            panic!("incr_bench: append failed: {e}");
        }
        incremental_us.push(started.elapsed().as_secs_f64() * 1e6);

        // Rebuild path: the grown master clone is prepared outside the
        // timer; only the from-scratch index warm-up counts.
        let grown = engine.master().clone();
        let started = Instant::now();
        match BatchRepairer::new(grown, target, rules.clone(), cfg.threads) {
            Ok(r) => std::hint::black_box(&r.num_indexes()),
            Err(e) => panic!("incr_bench: rebuild failed: {e}"),
        };
        rebuild_us.push(started.elapsed().as_secs_f64() * 1e6);
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let incremental_mean_us = mean(&incremental_us);
    let rebuild_mean_us = mean(&rebuild_us);

    // Equivalence: the appended engine and a fresh rebuild over the grown
    // master must serve the exact same repair report.
    let mut engine = build_engine();
    if let Err(e) = engine.append_rows(&delta) {
        panic!("incr_bench: append failed: {e}");
    }
    let rebuilt =
        match BatchRepairer::new(engine.master().clone(), target, rules.clone(), cfg.threads) {
            Ok(r) => r,
            Err(e) => panic!("incr_bench: rebuild failed: {e}"),
        };
    let input = s.task.input();
    let reports_identical = match (engine.repair_batch(input), rebuilt.repair_batch(input)) {
        (Ok(a), Ok(b)) => reports_equal(&a, &b),
        _ => false,
    };
    let staleness_after_append = engine.staleness();
    let er007_fired =
        er_lint::check_staleness(engine.rules_generation(), engine.master()).is_some();

    // RLMiner-ft over the grown master (the paper's Fig. 11 move), then
    // refresh the engine's rule set so ER007 goes quiet.
    let mut config = RlMinerConfig::new(base.support_threshold);
    config.train_steps = (cfg.train_steps / 5).max(200);
    config.finetune_steps = (config.train_steps / 3).max(100);
    config.seed = 11;
    config.threads = cfg.threads;
    let finetune_steps = config.finetune_steps;
    let mut miner = RlMiner::new(&base.task, config);
    miner.train(&base.task);
    miner.set_support_threshold(s.support_threshold);
    let ft = miner.fine_tune(&s.task);
    let mined = miner.mine(&s.task).rules_only();
    let refreshed: Vec<EditingRule> = if mined.is_empty() {
        rules.clone()
    } else {
        mined
    };
    let refreshed_rules = refreshed.len();
    if let Err(e) = engine.refresh_rules(refreshed) {
        panic!("incr_bench: rule refresh failed: {e}");
    }
    let er007_clear_after_refresh = engine.staleness() == 0
        && er_lint::check_staleness(engine.rules_generation(), engine.master()).is_none();

    let result = IncrBench {
        dataset: s.name.clone(),
        rules: rules.len(),
        indexes: build_engine().num_indexes(),
        base_master_rows: base_rows,
        appended_rows: delta.len(),
        repeats,
        incremental_mean_us,
        rebuild_mean_us,
        speedup: rebuild_mean_us / incremental_mean_us.max(1e-9),
        reports_identical,
        staleness_after_append,
        er007_fired,
        er007_clear_after_refresh,
        finetune_steps,
        finetune_seconds: ft.elapsed.as_secs_f64(),
        refreshed_rules,
    };
    println!(
        "  master {} -> {} rows ({} appended), {} rules, {} warm indexes",
        result.base_master_rows,
        result.base_master_rows + result.appended_rows,
        result.appended_rows,
        result.rules,
        result.indexes
    );
    println!(
        "  append {:.0}us vs rebuild {:.0}us over {} repeats: {:.1}x speedup, reports identical: {}",
        result.incremental_mean_us,
        result.rebuild_mean_us,
        result.repeats,
        result.speedup,
        result.reports_identical
    );
    println!(
        "  staleness after append: {} (ER007 fired: {}); after RLMiner-ft refresh ({} rules, {:.2}s): clear={}",
        result.staleness_after_append,
        result.er007_fired,
        result.refreshed_rules,
        result.finetune_seconds,
        result.er007_clear_after_refresh
    );
    cfg.write_json("incr_bench", &result);
    result
}
