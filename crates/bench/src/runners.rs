//! One runner per table/figure of the paper (§V).

use crate::methods::{
    ctane_method, enuminer_method, rlminer_ft_method, rlminer_method, MethodOutcome,
};
use crate::stats::{mean_std, MeanStd};
use crate::ExperimentConfig;
use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use er_rlminer::{RlMiner, RlMinerConfig};
use er_rules::apply_rules;
use serde::Serialize;

const SEED_BASE: u64 = 11;

/// Table I — dataset summary.
#[derive(Debug, Serialize)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// `#A` — input arity.
    pub input_attrs: usize,
    /// `#A_m` — master arity.
    pub master_attrs: usize,
    /// `#Input` tuples.
    pub input_rows: usize,
    /// `#Master` tuples.
    pub master_rows: usize,
    /// Default support threshold `η_s` at this scale.
    pub support_threshold: usize,
    /// Dirty `Y` cells.
    pub dirty_y: usize,
}

/// Run Table I.
pub fn table1(cfg: &ExperimentConfig) -> Vec<Table1Row> {
    println!("== Table I: dataset summary ==");
    println!(
        "{:<10} {:>4} {:>5} {:>8} {:>8} {:>6} {:>7}",
        "dataset", "#A", "#A_m", "#input", "#master", "η_s", "dirtyY"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let s = cfg.scenario(kind, SEED_BASE);
        let row = Table1Row {
            dataset: s.name.clone(),
            input_attrs: s.task.input().num_attrs(),
            master_attrs: s.task.master().num_attrs(),
            input_rows: s.task.input().num_rows(),
            master_rows: s.task.master().num_rows(),
            support_threshold: s.support_threshold,
            dirty_y: s.num_dirty(),
        };
        println!(
            "{:<10} {:>4} {:>5} {:>8} {:>8} {:>6} {:>7}",
            row.dataset,
            row.input_attrs,
            row.master_attrs,
            row.input_rows,
            row.master_rows,
            row.support_threshold,
            row.dirty_y
        );
        rows.push(row);
    }
    cfg.write_json("table1", &rows);
    rows
}

/// Table II — rule length statistics of one method on one dataset.
#[derive(Debug, Serialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Number of rules returned.
    pub num_rules: usize,
    /// `|X|` statistics over the rule set.
    pub lhs: MeanStd,
    /// max/min `|X|`.
    pub lhs_max_min: (usize, usize),
    /// `|t_p|` statistics over the rule set.
    pub pattern: MeanStd,
    /// max/min `|t_p|`.
    pub pattern_max_min: (usize, usize),
}

fn shape_stats(dataset: &str, out: &MethodOutcome) -> Table2Row {
    let lhs: Vec<f64> = out.shapes.iter().map(|s| s.lhs as f64).collect();
    let pat: Vec<f64> = out.shapes.iter().map(|s| s.pattern as f64).collect();
    let max_min = |v: &[f64]| {
        if v.is_empty() {
            (0, 0)
        } else {
            (
                v.iter().cloned().fold(f64::MIN, f64::max) as usize,
                v.iter().cloned().fold(f64::MAX, f64::min) as usize,
            )
        }
    };
    Table2Row {
        dataset: dataset.to_string(),
        method: out.method.clone(),
        num_rules: out.shapes.len(),
        lhs: mean_std(&lhs),
        lhs_max_min: max_min(&lhs),
        pattern: mean_std(&pat),
        pattern_max_min: max_min(&pat),
    }
}

fn run_three_methods(cfg: &ExperimentConfig, s: &Scenario, seed: u64) -> Vec<MethodOutcome> {
    vec![
        ctane_method(s),
        enuminer_method(s, cfg.enu_budget, false, cfg.threads),
        rlminer_method(s, cfg.train_steps, seed, cfg.threads),
    ]
}

/// Run Table II.
pub fn table2(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    println!("== Table II: statistics on rule length ==");
    println!(
        "{:<10} {:<11} {:>6} {:>14} {:>9} {:>14} {:>9}",
        "dataset", "method", "rules", "LHS mean±std", "max/min", "pat mean±std", "max/min"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let s = cfg.scenario(kind, SEED_BASE);
        for out in run_three_methods(cfg, &s, SEED_BASE) {
            let row = shape_stats(&s.name, &out);
            println!(
                "{:<10} {:<11} {:>6} {:>14} {:>6}/{:<2} {:>14} {:>6}/{:<2}",
                row.dataset,
                row.method,
                row.num_rules,
                row.lhs.fmt2(),
                row.lhs_max_min.0,
                row.lhs_max_min.1,
                row.pattern.fmt2(),
                row.pattern_max_min.0,
                row.pattern_max_min.1
            );
            rows.push(row);
        }
    }
    cfg.write_json("table2", &rows);
    rows
}

/// Table III — repair quality of one method on one dataset (mean ± std over
/// repeats).
#[derive(Debug, Serialize)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// Weighted precision.
    pub precision: MeanStd,
    /// Weighted recall.
    pub recall: MeanStd,
    /// Weighted F-measure.
    pub f1: MeanStd,
    /// Total seconds (mean over repeats).
    pub seconds: f64,
}

/// Run Table III.
pub fn table3(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    println!(
        "== Table III: repair results (mean ± std over {} runs) ==",
        cfg.repeats
    );
    println!(
        "{:<10} {:<11} {:>14} {:>14} {:>14} {:>9}",
        "dataset", "method", "precision", "recall", "f1", "time(s)"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        // per (method) → per (metric) samples
        let mut samples: std::collections::HashMap<String, Vec<(f64, f64, f64, f64)>> =
            Default::default();
        for rep in 0..cfg.repeats {
            let seed = SEED_BASE + rep as u64;
            let s = cfg.scenario(kind, seed);
            for out in run_three_methods(cfg, &s, seed) {
                samples.entry(out.method.clone()).or_default().push((
                    out.prf.precision,
                    out.prf.recall,
                    out.prf.f1,
                    out.total_seconds,
                ));
            }
        }
        for method in ["CTANE", "EnuMiner", "RLMiner"] {
            let v = &samples[method];
            let row = Table3Row {
                dataset: kind.name().to_string(),
                method: method.to_string(),
                precision: mean_std(&v.iter().map(|x| x.0).collect::<Vec<_>>()),
                recall: mean_std(&v.iter().map(|x| x.1).collect::<Vec<_>>()),
                f1: mean_std(&v.iter().map(|x| x.2).collect::<Vec<_>>()),
                seconds: v.iter().map(|x| x.3).sum::<f64>() / v.len() as f64,
            };
            println!(
                "{:<10} {:<11} {:>14} {:>14} {:>14} {:>9.2}",
                row.dataset,
                row.method,
                row.precision.fmt2(),
                row.recall.fmt2(),
                row.f1.fmt2(),
                row.seconds
            );
            rows.push(row);
        }
    }
    cfg.write_json("table3", &rows);
    rows
}

/// One point of a sweep figure: x-value, method, F1, time.
#[derive(Debug, Serialize)]
pub struct SweepPoint {
    /// Sweep variable value (noise rate, duplicate rate, size, ...).
    pub x: f64,
    /// Method name.
    pub method: String,
    /// Weighted F-measure.
    pub f1: f64,
    /// Weighted precision.
    pub precision: f64,
    /// Weighted recall.
    pub recall: f64,
    /// Total seconds.
    pub seconds: f64,
    /// Candidate rules evaluated (cost proxy).
    pub evaluated: usize,
}

fn push_point(points: &mut Vec<SweepPoint>, x: f64, out: MethodOutcome) {
    println!(
        "  x={:<9} {:<11} F1={:.3} P={:.3} R={:.3} time={:>8.2}s evaluated={}",
        x,
        out.method,
        out.prf.f1,
        out.prf.precision,
        out.prf.recall,
        out.total_seconds,
        out.evaluated
    );
    points.push(SweepPoint {
        x,
        method: out.method,
        f1: out.prf.f1,
        precision: out.prf.precision,
        recall: out.prf.recall,
        seconds: out.total_seconds,
        evaluated: out.evaluated,
    });
}

/// Fig. 6 — varying noise rate over Adult: (a) F-measure, (b) time cost.
pub fn fig6(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    println!("== Figure 6: varying noise rate (Adult) ==");
    let mut points = Vec::new();
    for &noise in &[0.0, 0.05, 0.10, 0.15, 0.20] {
        let mut sc = cfg.scenario_config(DatasetKind::Adult, SEED_BASE);
        sc.noise.rate = noise;
        let s = DatasetKind::Adult.build(sc);
        push_point(
            &mut points,
            noise,
            enuminer_method(&s, cfg.enu_budget, false, cfg.threads),
        );
        push_point(
            &mut points,
            noise,
            rlminer_method(&s, cfg.train_steps, SEED_BASE, cfg.threads),
        );
    }
    cfg.write_json("fig6", &points);
    points
}

/// Fig. 7 — varying duplicate rate `d%` over Adult.
pub fn fig7(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    println!("== Figure 7: varying duplicate rate (Adult) ==");
    // Paper: master 5000, input 10000 (scaled at Small).
    let base = cfg.scenario_config(DatasetKind::Adult, SEED_BASE);
    let (master, input) = match cfg.scale {
        crate::Scale::Paper => (5000, 10_000),
        crate::Scale::Small => (base.master_size, base.master_size * 2),
    };
    let mut points = Vec::new();
    for &d in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let sc = ScenarioConfig {
            master_size: master,
            input_size: input,
            duplicate_rate: Some(d),
            ..base
        };
        let s = DatasetKind::Adult.build(sc);
        push_point(
            &mut points,
            d,
            enuminer_method(&s, cfg.enu_budget, false, cfg.threads),
        );
        push_point(
            &mut points,
            d,
            rlminer_method(&s, cfg.train_steps, SEED_BASE, cfg.threads),
        );
    }
    cfg.write_json("fig7", &points);
    points
}

/// Fig. 8 — varying input data size over Adult (incl. EnuMinerH3).
pub fn fig8(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    println!("== Figure 8: varying input size (Adult) ==");
    let base = cfg.scenario_config(DatasetKind::Adult, SEED_BASE);
    let sizes: Vec<usize> = match cfg.scale {
        crate::Scale::Paper => vec![10_000, 20_000, 30_000, 40_000],
        crate::Scale::Small => {
            let max = base.input_size;
            vec![max / 4, max / 2, (max * 3) / 4, max]
        }
    };
    let mut points = Vec::new();
    for &n in &sizes {
        let sc = ScenarioConfig {
            input_size: n,
            ..base
        };
        let s = DatasetKind::Adult.build(sc);
        push_point(
            &mut points,
            n as f64,
            enuminer_method(&s, cfg.enu_budget, false, cfg.threads),
        );
        push_point(
            &mut points,
            n as f64,
            enuminer_method(&s, cfg.enu_budget, true, cfg.threads),
        );
        push_point(
            &mut points,
            n as f64,
            rlminer_method(&s, cfg.train_steps, SEED_BASE, cfg.threads),
        );
    }
    cfg.write_json("fig8", &points);
    points
}

/// Fig. 9 — varying master data size over Adult (incl. EnuMinerH3).
pub fn fig9(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    println!("== Figure 9: varying master size (Adult) ==");
    let base = cfg.scenario_config(DatasetKind::Adult, SEED_BASE);
    let sizes: Vec<usize> = match cfg.scale {
        crate::Scale::Paper => vec![1000, 2000, 3000, 4000, 5000],
        crate::Scale::Small => {
            let max = base.master_size;
            vec![max / 5, (max * 2) / 5, (max * 3) / 5, (max * 4) / 5, max]
        }
    };
    let mut points = Vec::new();
    for &n in &sizes {
        let sc = ScenarioConfig {
            master_size: n,
            ..base
        };
        let s = DatasetKind::Adult.build(sc);
        push_point(
            &mut points,
            n as f64,
            enuminer_method(&s, cfg.enu_budget, false, cfg.threads),
        );
        push_point(
            &mut points,
            n as f64,
            enuminer_method(&s, cfg.enu_budget, true, cfg.threads),
        );
        push_point(
            &mut points,
            n as f64,
            rlminer_method(&s, cfg.train_steps, SEED_BASE, cfg.threads),
        );
    }
    cfg.write_json("fig9", &points);
    points
}

/// Figs. 10/11 — incremental input/master data: RLMiner-ft fine-tunes the
/// agent trained on the first increment instead of retraining.
fn incremental(cfg: &ExperimentConfig, grow_master: bool) -> Vec<SweepPoint> {
    let which = if grow_master { "master" } else { "input" };
    println!(
        "== Figure {}: incremental {} data (Adult) ==",
        if grow_master { 11 } else { 10 },
        which
    );
    let base = cfg.scenario_config(DatasetKind::Adult, SEED_BASE);
    let full = DatasetKind::Adult.build(base);
    let (full_n, versions): (usize, Vec<usize>) = if grow_master {
        let m = full.task.master().num_rows();
        (m, vec![(m * 2) / 5, (m * 3) / 5, (m * 4) / 5, m])
    } else {
        let n = full.task.input().num_rows();
        (n, vec![(n * 2) / 5, (n * 3) / 5, (n * 4) / 5, n])
    };
    let version = |n: usize| {
        if grow_master {
            full.with_master_prefix(n)
        } else {
            full.with_input_prefix(n)
        }
    };
    let _ = full_n;

    // Initial training on the first increment.
    let first = version(versions[0]);
    let mut config = RlMinerConfig::new(first.support_threshold);
    config.train_steps = cfg.train_steps;
    config.finetune_steps = cfg.train_steps / 3;
    config.seed = SEED_BASE;
    config.threads = cfg.threads;
    let mut ft = RlMiner::new(&first.task, config);
    ft.train(&first.task);

    let mut points = Vec::new();
    for &n in &versions[1..] {
        let s = version(n);
        push_point(
            &mut points,
            n as f64,
            enuminer_method(&s, cfg.enu_budget, false, cfg.threads),
        );
        push_point(
            &mut points,
            n as f64,
            rlminer_method(&s, cfg.train_steps, SEED_BASE, cfg.threads),
        );
        // Keep the fine-tuned miner's threshold aligned with this version's.
        ft.set_support_threshold(s.support_threshold);
        push_point(&mut points, n as f64, rlminer_ft_method(&mut ft, &s));
    }
    points
}

/// Fig. 10 — incremental input data.
pub fn fig10(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let points = incremental(cfg, false);
    cfg.write_json("fig10", &points);
    points
}

/// Fig. 11 — incremental master data.
pub fn fig11(cfg: &ExperimentConfig) -> Vec<SweepPoint> {
    let points = incremental(cfg, true);
    cfg.write_json("fig11", &points);
    points
}

/// Fig. 12 — training and inference costs of RLMiner per dataset.
#[derive(Debug, Serialize)]
pub struct Fig12Row {
    /// Dataset name.
    pub dataset: String,
    /// From-scratch training steps.
    pub train_steps: usize,
    /// From-scratch training seconds.
    pub train_seconds: f64,
    /// Fine-tuning steps.
    pub finetune_steps: usize,
    /// Fine-tuning seconds.
    pub finetune_seconds: f64,
    /// Inference steps (the paper observes ≈150).
    pub inference_steps: usize,
    /// Inference seconds.
    pub inference_seconds: f64,
}

/// Run Fig. 12.
pub fn fig12(cfg: &ExperimentConfig) -> Vec<Fig12Row> {
    println!("== Figure 12: RLMiner training/fine-tuning/inference cost ==");
    println!(
        "{:<10} {:>11} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "dataset", "train steps", "train(s)", "ft steps", "ft(s)", "inf steps", "inf(s)"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let s = cfg.scenario(kind, SEED_BASE);
        let mut config = RlMinerConfig::new(s.support_threshold);
        config.train_steps = cfg.train_steps;
        config.finetune_steps = cfg.train_steps / 3;
        config.seed = SEED_BASE;
        config.threads = cfg.threads;
        let mut miner = RlMiner::new(&s.task, config);
        let t = miner.train(&s.task);
        let ft = miner.fine_tune(&s.task);
        let inf = miner.mine(&s.task);
        let row = Fig12Row {
            dataset: s.name.clone(),
            train_steps: t.steps,
            train_seconds: t.elapsed.as_secs_f64(),
            finetune_steps: ft.steps,
            finetune_seconds: ft.elapsed.as_secs_f64(),
            inference_steps: inf.steps,
            inference_seconds: inf.elapsed.as_secs_f64(),
        };
        println!(
            "{:<10} {:>11} {:>10.2} {:>9} {:>9.2} {:>10} {:>10.3}",
            row.dataset,
            row.train_steps,
            row.train_seconds,
            row.finetune_steps,
            row.finetune_seconds,
            row.inference_steps,
            row.inference_seconds
        );
        rows.push(row);
    }
    cfg.write_json("fig12", &rows);
    rows
}

/// One ablation variant's outcome.
#[derive(Debug, Serialize)]
pub struct AblationRow {
    /// Variant name.
    pub variant: String,
    /// Weighted F-measure of the repairs.
    pub f1: f64,
    /// Rules discovered at inference.
    pub rules: usize,
    /// Reward collected during training (higher = agent found value).
    pub reward_sum: f64,
}

/// Ablations of RLMiner's design choices (DESIGN.md §4): reward shaping,
/// global mask, stop reward θ, reward normalization.
pub fn ablate(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    println!("== Ablation study (Covid) ==");
    let s = cfg.scenario(DatasetKind::Covid, SEED_BASE);
    type Tweak = Box<dyn Fn(&mut RlMinerConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("full", Box::new(|_| {})),
        ("no-shaping", Box::new(|c| c.shaping = false)),
        ("no-global-mask", Box::new(|c| c.global_mask = false)),
        ("theta=0", Box::new(|c| c.theta = 0.0)),
        ("theta=0.1 (easy money)", Box::new(|c| c.theta = 0.1)),
        (
            "no-reward-normalization",
            Box::new(|c| c.normalize_rewards = false),
        ),
        ("+double-dqn", Box::new(|c| c.double_dqn = true)),
        (
            "+prioritized-replay",
            Box::new(|c| c.prioritized_replay = true),
        ),
    ];
    println!(
        "{:<26} {:>7} {:>7} {:>12}",
        "variant", "F1", "rules", "reward sum"
    );
    let mut rows = Vec::new();
    for (name, tweak) in variants {
        let mut config = RlMinerConfig::new(s.support_threshold);
        config.train_steps = cfg.train_steps;
        config.epsilon.2 = (cfg.train_steps * 3) / 5;
        config.seed = SEED_BASE;
        config.threads = cfg.threads;
        tweak(&mut config);
        let mut miner = RlMiner::new(&s.task, config);
        let stats = miner.train(&s.task);
        let result = miner.mine(&s.task);
        let prf = s.evaluate(&apply_rules(&s.task, &result.rules_only()));
        let row = AblationRow {
            variant: name.to_string(),
            f1: prf.f1,
            rules: result.rules.len(),
            reward_sum: stats.reward_sum,
        };
        println!(
            "{:<26} {:>7.3} {:>7} {:>12.2}",
            row.variant, row.f1, row.rules, row.reward_sum
        );
        rows.push(row);
    }
    cfg.write_json("ablate", &rows);
    rows
}

/// One point of the thread-scaling sweep.
#[derive(Debug, Serialize)]
pub struct ParSweepPoint {
    /// Worker threads EnuMiner fanned out over.
    pub threads: usize,
    /// Mining wall-clock seconds (best of `repeats` runs).
    pub seconds: f64,
    /// Speedup vs the 1-thread run.
    pub speedup: f64,
    /// Distinct rules evaluated (identical across thread counts).
    pub evaluated: usize,
    /// Rules returned (identical across thread counts).
    pub rules: usize,
}

/// Thread-scaling sweep artifact (`results/par_sweep.json`).
#[derive(Debug, Serialize)]
pub struct ParSweep {
    /// Hardware parallelism of the host that produced the numbers — on a
    /// 1-core host the sweep proves determinism but cannot show speedup.
    pub host_parallelism: usize,
    /// Whether every thread count produced the identical rule list,
    /// measures, and counters.
    pub deterministic: bool,
    /// One point per thread count.
    pub points: Vec<ParSweepPoint>,
}

/// Thread sweep: run EnuMiner on the Fig. 9 workload (Adult, full master)
/// at 1/2/4/8 threads, assert the results are identical, and record the
/// wall-clock scaling as a tracked artifact.
pub fn par_sweep(cfg: &ExperimentConfig) -> ParSweep {
    println!("== Thread sweep: EnuMiner on the Fig. 9 workload (Adult) ==");
    let s = cfg.scenario(DatasetKind::Adult, SEED_BASE);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut config = er_enuminer::EnuMinerConfig::new(s.support_threshold);
    config.max_rules_evaluated = cfg.enu_budget;

    let mut points: Vec<ParSweepPoint> = Vec::new();
    let mut baseline: Option<er_enuminer::MineResult> = None;
    let mut deterministic = true;
    for &threads in &[1usize, 2, 4, 8] {
        config.threads = threads;
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..cfg.repeats.max(1) {
            let result = er_enuminer::mine(&s.task, config);
            best = best.min(result.elapsed.as_secs_f64());
            last = Some(result);
        }
        // `last` is always Some: the repeat loop runs at least once.
        let Some(result) = last else { continue };
        match &baseline {
            None => baseline = Some(result.clone()),
            Some(base) => {
                let same = base.rules == result.rules
                    && base.evaluated == result.evaluated
                    && base.expanded == result.expanded;
                if !same {
                    deterministic = false;
                    eprintln!("warn: {threads}-thread run diverged from the 1-thread run");
                }
            }
        }
        let base_s = points.first().map_or(best, |p| p.seconds);
        let point = ParSweepPoint {
            threads,
            seconds: best,
            speedup: if best > 0.0 { base_s / best } else { 1.0 },
            evaluated: result.evaluated,
            rules: result.rules.len(),
        };
        println!(
            "  threads={:<2} time={:>8.3}s speedup={:>5.2}x evaluated={} rules={}",
            point.threads, point.seconds, point.speedup, point.evaluated, point.rules
        );
        points.push(point);
    }
    let sweep = ParSweep {
        host_parallelism,
        deterministic,
        points,
    };
    println!(
        "  host parallelism: {} — speedups only materialize with ≥ that many cores",
        sweep.host_parallelism
    );
    cfg.write_json("par_sweep", &sweep);
    sweep
}
