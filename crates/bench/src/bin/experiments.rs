//! Experiment driver reproducing every table and figure of the paper.
//!
//! ```text
//! cargo run -p er-bench --release --bin experiments -- all
//! cargo run -p er-bench --release --bin experiments -- table3 fig8
//! cargo run -p er-bench --release --bin experiments -- --paper-scale table3
//! cargo run -p er-bench --release --bin experiments -- --quick all
//! ```
//!
//! Results are printed and also saved as JSON under `results/`.

use er_bench::ExperimentConfig;

const USAGE: &str = "\
usage: experiments [--paper-scale|--quick] [--repeats N] [--train-steps N] <ids...>
  ids: all table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 ablate
  --paper-scale   run at the paper's dataset sizes (EnuMiner may take hours)
  --quick         smoke-test scale (shorter training, tighter budgets)
  --repeats N     repetitions for mean±std tables (default 3, paper 5)
  --train-steps N RLMiner training steps (default 5000)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper-scale" => cfg = ExperimentConfig { out_dir: cfg.out_dir.clone(), ..ExperimentConfig::paper() },
            "--quick" => cfg = ExperimentConfig { out_dir: cfg.out_dir.clone(), ..ExperimentConfig::quick() },
            "--repeats" => {
                cfg.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--repeats needs a number"));
            }
            "--train-steps" => {
                cfg.train_steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--train-steps needs a number"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = ["table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablate"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    println!(
        "scale={:?} repeats={} train_steps={} enu_budget={:?}\n",
        cfg.scale, cfg.repeats, cfg.train_steps, cfg.enu_budget
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match id.as_str() {
            "table1" => {
                er_bench::table1(&cfg);
            }
            "table2" => {
                er_bench::table2(&cfg);
            }
            "table3" => {
                er_bench::table3(&cfg);
            }
            "fig6" => {
                er_bench::fig6(&cfg);
            }
            "fig7" => {
                er_bench::fig7(&cfg);
            }
            "fig8" => {
                er_bench::fig8(&cfg);
            }
            "fig9" => {
                er_bench::fig9(&cfg);
            }
            "fig10" => {
                er_bench::fig10(&cfg);
            }
            "fig11" => {
                er_bench::fig11(&cfg);
            }
            "fig12" => {
                er_bench::fig12(&cfg);
            }
            "ablate" => {
                er_bench::ablate(&cfg);
            }
            other => die(&format!("unknown experiment id {other}")),
        }
        println!("[{} finished in {:.1?}]\n", id, start.elapsed());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}
