//! Experiment driver reproducing every table and figure of the paper.
//!
//! ```text
//! cargo run -p er-bench --release --bin experiments -- all
//! cargo run -p er-bench --release --bin experiments -- table3 fig8
//! cargo run -p er-bench --release --bin experiments -- --paper-scale table3
//! cargo run -p er-bench --release --bin experiments -- --quick all
//! ```
//!
//! Results are printed and also saved as JSON under `results/`.

use er_bench::ExperimentConfig;

const USAGE: &str = "\
usage: experiments [--paper-scale|--quick] [--repeats N] [--train-steps N] [--threads N] <ids...>
       experiments lint [--dataset NAME] [--seed N] [--json] [--fix [--out PATH]] <rules.json>
       experiments analyze [--dataset NAME] [--seed N] [--threads N] [--json] [--out PATH] <rules.json>
       experiments diff [--dataset NAME] [--seed N] [--threads N] [--scope JSON] [--json] [--out PATH] <old.json> <new.json>
       experiments prove [--dataset NAME] [--seed N] [--threads N] [--json] [--out PATH] <rules.json>
  ids: all table1 table2 table3 fig6 fig7 fig8 fig9 fig10 fig11 fig12 ablate par_sweep serve_bench shard_bench incr_bench repair_bench ingest_bench
  --paper-scale   run at the paper's dataset sizes (EnuMiner may take hours)
  --quick         smoke-test scale (shorter training, tighter budgets)
  --repeats N     repetitions for mean±std tables (default 3, paper 5)
  --train-steps N RLMiner training steps (default 5000)
  --threads N     miner worker threads (default 0 = ER_THREADS env or 1);
                  results are identical at any thread count
lint: statically analyze a rule-set JSON file against a dataset scenario
  --dataset NAME  any dataset-registry name: figure1 (default), adult,
                  covid, nursery, location, or one defined by --registry
  --registry PATH JSON config of extra named datasets (generator variants
                  or chunk-streamed CSV pairs); see examples/datasets.json
  --seed N        scenario seed for the generated datasets (default 1)
  --json          emit the machine-readable JSON report instead of text
  --fix           remove rules flagged ER003/ER004 (mechanically safe) and
                  write the cleaned rule set to --out (default: stdout)
  --out PATH      where --fix writes the cleaned JSON
analyze: whole-rule-set static analysis (er-analyze) against a scenario:
  chase-termination certificate (ER008), conflicting repairs with master
  witnesses (ER009), dead rules vs. the master domains (ER010)
  --dataset/--seed as for lint; --threads N for the analysis fan-out
  --json          print the JSON report instead of text
  --out PATH      also save the JSON report (default: results/analyze.json)
  exits 1 when the report contains errors, 2 on usage/IO problems
diff: edit-scope analysis of a rule-set change (er-analyze diff pass):
  which master signatures change repair verdict between the two versions,
  each with a concrete master-row witness (ER011), or an equivalence
  certificate when none do; with --scope, changes outside the declared
  scope are ER012 errors (exit 1) — the serve promotion gate
  --scope JSON    declared edit scope: {attr:value,...} or a list of such
                  conjunctions of input-attribute equalities
  --dataset/--seed/--threads/--json as for analyze
  --out PATH      also save the JSON report (default: results/diff.json)
  exits 1 when the report contains errors, 2 on usage/IO problems
prove: confluence certification (er-analyze critical-pair pass): join every
  critical pair of the rule set over concrete master witnesses and print the
  machine-checkable ConfluenceCertificate, the ER013 two-order divergence
  counterexamples, or the ER014 tie-break dependences
  --dataset/--seed/--threads/--json as for analyze
  --out PATH      also save the full JSON report (default: results/prove.json)
  exits 0 only when the certificate is issued, 1 otherwise, 2 on usage/IO";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args[0] == "lint" {
        lint_main(&args[1..]);
        return;
    }
    if args[0] == "analyze" {
        analyze_main(&args[1..]);
        return;
    }
    if args[0] == "diff" {
        diff_main(&args[1..]);
        return;
    }
    if args[0] == "prove" {
        prove_main(&args[1..]);
        return;
    }
    let mut cfg = ExperimentConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--paper-scale" => {
                cfg = ExperimentConfig {
                    out_dir: cfg.out_dir.clone(),
                    ..ExperimentConfig::paper()
                }
            }
            "--quick" => {
                cfg = ExperimentConfig {
                    out_dir: cfg.out_dir.clone(),
                    ..ExperimentConfig::quick()
                }
            }
            "--repeats" => {
                cfg.repeats = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--repeats needs a number"));
            }
            "--train-steps" => {
                cfg.train_steps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--train-steps needs a number"));
            }
            "--threads" => {
                cfg.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if ids.iter().any(|i| i == "all") {
        ids = [
            "table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "ablate",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    println!(
        "scale={:?} repeats={} train_steps={} enu_budget={:?}\n",
        cfg.scale, cfg.repeats, cfg.train_steps, cfg.enu_budget
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match id.as_str() {
            "table1" => {
                er_bench::table1(&cfg);
            }
            "table2" => {
                er_bench::table2(&cfg);
            }
            "table3" => {
                er_bench::table3(&cfg);
            }
            "fig6" => {
                er_bench::fig6(&cfg);
            }
            "fig7" => {
                er_bench::fig7(&cfg);
            }
            "fig8" => {
                er_bench::fig8(&cfg);
            }
            "fig9" => {
                er_bench::fig9(&cfg);
            }
            "fig10" => {
                er_bench::fig10(&cfg);
            }
            "fig11" => {
                er_bench::fig11(&cfg);
            }
            "fig12" => {
                er_bench::fig12(&cfg);
            }
            "ablate" => {
                er_bench::ablate(&cfg);
            }
            "par_sweep" => {
                er_bench::par_sweep(&cfg);
            }
            "serve_bench" => {
                er_bench::serve_bench(&cfg);
            }
            "shard_bench" => {
                er_bench::shard_bench(&cfg);
            }
            "incr_bench" => {
                er_bench::incr_bench(&cfg);
            }
            "repair_bench" => {
                er_bench::repair_bench(&cfg);
            }
            "ingest_bench" => {
                er_bench::ingest_bench(&cfg);
            }
            other => die(&format!("unknown experiment id {other}")),
        }
        println!("[{} finished in {:.1?}]\n", id, start.elapsed());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Build the named dataset scenario shared by the `lint`, `analyze`, and
/// `diff` subcommands. Every name resolves through the er-ingest
/// [`DatasetRegistry`](er_ingest::DatasetRegistry): the built-in catalog
/// (figure1 + the four paper generators) optionally extended by a
/// `--registry` JSON config of named dataset definitions.
fn load_scenario(registry_config: Option<&str>, dataset: &str, seed: u64) -> er_datagen::Scenario {
    let mut registry = er_ingest::DatasetRegistry::builtin();
    if let Some(path) = registry_config {
        if let Err(e) = registry.load_config(path) {
            die(&format!("--registry {path}: {e}"));
        }
    }
    let knobs = er_ingest::ScaleKnobs { scale: 1.0, seed };
    registry
        .build(dataset, &knobs)
        .unwrap_or_else(|e| die(&e.to_string()))
}

/// The `analyze` subcommand: run the er-analyze passes over a rule-set JSON
/// file against the named dataset scenario, print the certificates, and
/// save the JSON report.
fn analyze_main(args: &[String]) {
    let mut dataset = "figure1".to_string();
    let mut seed = 1u64;
    let mut threads = 0usize;
    let mut json_out = false;
    let mut registry: Option<String> = None;
    let mut out = "results/analyze.json".to_string();
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => {
                dataset = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--dataset needs a name"));
            }
            "--registry" => {
                registry = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--registry needs a path")),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--json" => json_out = true,
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            path if !path.starts_with('-') => file = Some(path.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        die("analyze needs a rules.json path")
    };
    let scenario = load_scenario(registry.as_deref(), &dataset, seed);
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let config = er_analyze::AnalyzeConfig::with_threads(threads);
    let report = match er_analyze::analyze_json(&json, &scenario.task, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    let rendered_json = report.render_json();
    if json_out {
        println!("{rendered_json}");
    } else {
        print!("{}", report.render_text());
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&out, rendered_json + "\n") {
        Ok(()) => eprintln!("analyze: saved {out}"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
    if report.errors() > 0 {
        std::process::exit(1);
    }
}

/// The `prove` subcommand: run the full er-analyze pipeline but report the
/// confluence half — the certificate when every critical pair joins, the
/// ER013/ER014 witnesses when not. Exit 0 only with a certificate in hand.
fn prove_main(args: &[String]) {
    let mut dataset = "figure1".to_string();
    let mut seed = 1u64;
    let mut threads = 0usize;
    let mut json_out = false;
    let mut registry: Option<String> = None;
    let mut out = "results/prove.json".to_string();
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => {
                dataset = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--dataset needs a name"));
            }
            "--registry" => {
                registry = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--registry needs a path")),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--json" => json_out = true,
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            path if !path.starts_with('-') => file = Some(path.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        die("prove needs a rules.json path")
    };
    let scenario = load_scenario(registry.as_deref(), &dataset, seed);
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let config = er_analyze::AnalyzeConfig::with_threads(threads);
    let report = match er_analyze::analyze_json(&json, &scenario.task, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        }
    };
    let cert = &report.confluence;
    if json_out {
        println!("{}", serde_json::to_string_pretty(cert).unwrap_or_default());
    } else if cert.certified {
        println!(
            "confluence: CERTIFIED — {} rules, {} critical pair(s) join on the current \
             master (generation {}); arrival-order vote merges are licensed",
            cert.num_rules, cert.pairs, cert.generation
        );
        for p in &cert.proofs {
            println!(
                "  pair (#{}, #{}): joins on {} witness row(s)",
                p.related, p.rule, p.witness_rows
            );
        }
    } else {
        println!(
            "confluence: NOT CERTIFIED — {} divergent pair(s), {} tie-break-dependent \
             pair(s) of {} checked; vote merges stay in rule order",
            cert.divergent.len(),
            cert.tie_broken.len(),
            cert.pairs
        );
        // The certificate-relevant findings carry the rendered two-order
        // witnesses; everything else stays in `analyze`'s report.
        for f in report.findings.iter().filter(|f| {
            matches!(
                f.code,
                er_lint::DiagnosticCode::Er013 | er_lint::DiagnosticCode::Er014
            )
        }) {
            println!("{}[{}]: {}", f.severity, f.code, f.message);
            println!("  --> rule #{}: {}", f.rule, f.span);
            if let Some(note) = &f.note {
                println!("  = note: {note}");
            }
        }
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&out, report.render_json() + "\n") {
        Ok(()) => eprintln!("prove: saved {out}"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
    if !cert.certified {
        std::process::exit(1);
    }
}

/// The `diff` subcommand: run the er-analyze edit-scope diff over two
/// rule-set JSON files against the named dataset scenario, print the
/// changed signatures (or the equivalence certificate), and save the JSON
/// report.
fn diff_main(args: &[String]) {
    let mut dataset = "figure1".to_string();
    let mut seed = 1u64;
    let mut threads = 0usize;
    let mut json_out = false;
    let mut registry: Option<String> = None;
    let mut out = "results/diff.json".to_string();
    let mut scope_json: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => {
                dataset = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--dataset needs a name"));
            }
            "--registry" => {
                registry = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--registry needs a path")),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--json" => json_out = true,
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a path"));
            }
            "--scope" => {
                scope_json = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--scope needs a JSON document")),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            path if !path.starts_with('-') => files.push(path.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        die("diff needs exactly two rules.json paths (old, new)")
    };
    let scope = scope_json.map(|s| {
        er_analyze::EditScope::from_json(&s).unwrap_or_else(|e| {
            eprintln!("error: --scope: {e}");
            std::process::exit(2);
        })
    });
    let scenario = load_scenario(registry.as_deref(), &dataset, seed);
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let (old_json, new_json) = (read(old_path), read(new_path));
    let config = er_analyze::AnalyzeConfig::with_threads(threads);
    let report = match er_analyze::diff_json(
        &old_json,
        &new_json,
        &scenario.task,
        scope.as_ref(),
        &config,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let rendered_json = report.render_json();
    if json_out {
        println!("{rendered_json}");
    } else {
        print!("{}", report.render_text());
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    match std::fs::write(&out, rendered_json + "\n") {
        Ok(()) => eprintln!("diff: saved {out}"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
    if report.errors() > 0 {
        std::process::exit(1);
    }
}

/// The `lint` subcommand: run er-lint over a rule-set JSON file against the
/// named dataset scenario and render the report.
fn lint_main(args: &[String]) {
    let mut dataset = "figure1".to_string();
    let mut seed = 1u64;
    let mut json_out = false;
    let mut registry: Option<String> = None;
    let mut fix = false;
    let mut out: Option<String> = None;
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dataset" => {
                dataset = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--dataset needs a name"));
            }
            "--registry" => {
                registry = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--registry needs a path")),
                );
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--json" => json_out = true,
            "--fix" => fix = true,
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a path")),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            path if !path.starts_with('-') => file = Some(path.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(path) = file else {
        die("lint needs a rules.json path")
    };

    let scenario = load_scenario(registry.as_deref(), &dataset, seed);

    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let rules: Vec<er_rules::PortableRule> = match serde_json::from_str(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: not a rule-set document: {e}");
            std::process::exit(2);
        }
    };
    let report = er_lint::lint_portable(&rules, &scenario.task);
    if fix {
        let outcome = er_lint::apply_fixes(&rules, &report);
        let cleaned = match serde_json::to_string_pretty(&outcome.kept) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot serialize the cleaned rule set: {e}");
                std::process::exit(2);
            }
        };
        eprintln!(
            "fix: removed {} of {} rules (ER003/ER004), kept {}",
            outcome.removed.len(),
            rules.len(),
            outcome.kept.len()
        );
        match &out {
            Some(dest) => {
                if let Err(e) = std::fs::write(dest, cleaned + "\n") {
                    eprintln!("error: cannot write {dest}: {e}");
                    std::process::exit(2);
                }
                eprintln!("fix: wrote {dest}");
            }
            None => println!("{cleaned}"),
        }
    } else if json_out {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.errors() > 0 {
        std::process::exit(1);
    }
}
