//! Uniform wrappers around the four mining methods so every experiment
//! reports the same columns: rule shapes, repair quality, and costs.

use er_cfd::{ctane_baseline, CtaneConfig};
use er_datagen::Scenario;
use er_enuminer::EnuMinerConfig;
use er_rlminer::{RlMiner, RlMinerConfig};
use er_rules::{apply_rules, EditingRule, WeightedPrf};
use serde::Serialize;
use std::time::Instant;

/// `(|X|, |t_p|)` of one discovered rule.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RuleShape {
    /// LHS length `|X|`.
    pub lhs: usize,
    /// Pattern length `|X_p|`.
    pub pattern: usize,
}

/// What one method produced on one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct MethodOutcome {
    /// Method name (`CTANE`, `EnuMiner`, `EnuMinerH3`, `RLMiner`,
    /// `RLMiner-ft`).
    pub method: String,
    /// Shape of each discovered rule.
    pub shapes: Vec<RuleShape>,
    /// Weighted precision/recall/F1 of the repairs.
    pub prf: WeightedPrf,
    /// Training wall-clock seconds (0 for non-RL methods).
    pub train_seconds: f64,
    /// Mining/inference wall-clock seconds.
    pub mine_seconds: f64,
    /// Total seconds (train + mine).
    pub total_seconds: f64,
    /// Candidate rules measure-evaluated (cost proxy comparable across
    /// miners; for RLMiner this counts fresh evaluations during training).
    pub evaluated: usize,
}

fn shapes_of(rules: &[EditingRule]) -> Vec<RuleShape> {
    rules
        .iter()
        .map(|r| RuleShape {
            lhs: r.lhs_len(),
            pattern: r.pattern_len(),
        })
        .collect()
}

fn finish(
    method: &str,
    scenario: &Scenario,
    rules: Vec<EditingRule>,
    train_seconds: f64,
    mine_seconds: f64,
    evaluated: usize,
) -> MethodOutcome {
    let report = apply_rules(&scenario.task, &rules);
    let prf = scenario.evaluate(&report);
    MethodOutcome {
        method: method.to_string(),
        shapes: shapes_of(&rules),
        prf,
        train_seconds,
        mine_seconds,
        total_seconds: train_seconds + mine_seconds,
        evaluated,
    }
}

/// Run EnuMiner (or EnuMinerH3 with `h3 = true`) on a scenario with the
/// given worker-thread count (`0` = auto).
pub fn enuminer_method(
    scenario: &Scenario,
    budget: Option<usize>,
    h3: bool,
    threads: usize,
) -> MethodOutcome {
    let mut config = if h3 {
        EnuMinerConfig::h3(scenario.support_threshold)
    } else {
        EnuMinerConfig::new(scenario.support_threshold)
    };
    config.max_rules_evaluated = budget;
    config.threads = threads;
    let result = er_enuminer::mine(&scenario.task, config);
    finish(
        if h3 { "EnuMinerH3" } else { "EnuMiner" },
        scenario,
        result.rules_only(),
        0.0,
        result.elapsed.as_secs_f64(),
        result.evaluated,
    )
}

/// Train RLMiner from scratch and mine, with the given worker-thread count
/// (`0` = auto).
pub fn rlminer_method(
    scenario: &Scenario,
    train_steps: usize,
    seed: u64,
    threads: usize,
) -> MethodOutcome {
    let mut config = RlMinerConfig::new(scenario.support_threshold);
    config.train_steps = train_steps;
    config.epsilon.2 = (train_steps * 3) / 5;
    config.seed = seed;
    config.threads = threads;
    let mut miner = RlMiner::new(&scenario.task, config);
    let stats = miner.train(&scenario.task);
    let result = miner.mine(&scenario.task);
    finish(
        "RLMiner",
        scenario,
        result.rules_only(),
        stats.elapsed.as_secs_f64(),
        result.elapsed.as_secs_f64(),
        stats.fresh_evaluations,
    )
}

/// Fine-tune an existing miner on a new scenario version and mine
/// (RLMiner-ft).
pub fn rlminer_ft_method(miner: &mut RlMiner, scenario: &Scenario) -> MethodOutcome {
    let stats = miner.fine_tune(&scenario.task);
    let result = miner.mine(&scenario.task);
    finish(
        "RLMiner-ft",
        scenario,
        result.rules_only(),
        stats.elapsed.as_secs_f64(),
        result.elapsed.as_secs_f64(),
        stats.fresh_evaluations,
    )
}

/// The CTANE CFD-transfer baseline.
pub fn ctane_method(scenario: &Scenario) -> MethodOutcome {
    // CFDs are mined on the (smaller) master relation: scale the threshold
    // from the input-side η_s by the size ratio, with a floor.
    let master_rows = scenario.task.master().num_rows();
    let input_rows = scenario.task.input().num_rows().max(1);
    let eta = ((scenario.support_threshold as f64 * master_rows as f64 / input_rows as f64).round()
        as usize)
        .max(3);
    let t = Instant::now();
    // Exact CFDs (confidence 1.0), as the paper's CTANE mines. On data with
    // approximate dependencies this starves CTANE of global rules — exactly
    // the paper's low-recall finding; relaxing the confidence erases the
    // gap (see EXPERIMENTS.md).
    let (rules, result) = ctane_baseline(&scenario.task, CtaneConfig::new(eta));
    let elapsed = t.elapsed().as_secs_f64();
    finish("CTANE", scenario, rules, 0.0, elapsed, result.evaluated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::{DatasetKind, ScenarioConfig};

    fn tiny() -> Scenario {
        DatasetKind::Covid.build(ScenarioConfig {
            input_size: 300,
            master_size: 150,
            seed: 5,
            ..DatasetKind::Covid.paper_config()
        })
    }

    #[test]
    fn enuminer_outcome_is_consistent() {
        let s = tiny();
        let out = enuminer_method(&s, Some(20_000), false, 0);
        assert_eq!(out.method, "EnuMiner");
        assert_eq!(out.shapes.len(), out.shapes.len());
        assert!(out.evaluated > 0);
        assert!(out.total_seconds >= out.mine_seconds);
    }

    #[test]
    fn h3_flag_changes_name_and_caps_depth() {
        let s = tiny();
        let out = enuminer_method(&s, Some(20_000), true, 0);
        assert_eq!(out.method, "EnuMinerH3");
        assert!(out.shapes.iter().all(|sh| sh.lhs <= 3 && sh.pattern <= 3));
    }

    #[test]
    fn ctane_outcome() {
        let s = tiny();
        let out = ctane_method(&s);
        assert_eq!(out.method, "CTANE");
        assert_eq!(out.train_seconds, 0.0);
    }

    #[test]
    fn rlminer_outcome() {
        let s = tiny();
        let out = rlminer_method(&s, 400, 3, 0);
        assert_eq!(out.method, "RLMiner");
        assert!(out.train_seconds > 0.0);
        assert!(out.evaluated <= 400);
    }
}
