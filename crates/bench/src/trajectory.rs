//! Repo-root perf trajectory files.
//!
//! Every perf-sensitive bench (`repair_bench`, `ingest_bench`) appends one
//! entry per full run to a committed `BENCH_*.json` file at the repo root,
//! so the perf delta of every PR is visible in review. This module holds the
//! append/validate machinery the benches share: appending round-trips the
//! result through its serializer so the trajectory uses the exact field
//! names the struct serializes with, and validation checks the file parses
//! and that every entry carries the numeric fields the PR-over-PR
//! comparison needs.

use serde::Serialize;
use serde_json::Value as Json;

/// Append one entry to the trajectory file `file`, creating it on the first
/// ever full run. `bench` is recorded as the file's `"bench"` tag.
pub fn append_trajectory<T: Serialize>(file: &str, bench: &str, result: &T) {
    let mut entries: Vec<Json> = match std::fs::read_to_string(file) {
        Ok(s) => match serde_json::from_str::<Json>(&s) {
            Ok(doc) => doc
                .get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                .unwrap_or_default(),
            Err(_) => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let entry = serde_json::to_string(result)
        .ok()
        .and_then(|s| serde_json::from_str::<Json>(&s).ok());
    let Some(entry) = entry else {
        eprintln!("warn: cannot serialize the trajectory entry");
        return;
    };
    entries.push(entry);
    let doc = Json::Object(vec![
        ("bench".to_string(), Json::Str(bench.to_string())),
        ("entries".to_string(), Json::Array(entries)),
    ]);
    match serde_json::to_string_pretty(&doc) {
        Ok(json) => match std::fs::write(file, json + "\n") {
            Ok(()) => println!("  [appended entry to {file}]"),
            Err(e) => eprintln!("warn: cannot write {file}: {e}"),
        },
        Err(e) => eprintln!("warn: cannot serialize {file}: {e}"),
    }
}

/// Check that the trajectory file parses and every entry carries the given
/// numeric fields. Returns the entry count.
pub fn validate_trajectory(file: &str, required: &[&str]) -> Result<usize, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read: {e}"))?;
    let doc = serde_json::from_str::<Json>(&text).map_err(|e| format!("not JSON: {e}"))?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("no \"entries\" array")?;
    if entries.is_empty() {
        return Err("\"entries\" is empty".to_string());
    }
    for (i, entry) in entries.iter().enumerate() {
        for field in required {
            let ok = matches!(
                entry.get(field),
                Some(Json::Int(_) | Json::UInt(_) | Json::Float(_))
            );
            if !ok {
                return Err(format!("entry {i} lacks numeric field \"{field}\""));
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_missing_fields() {
        let dir = std::env::temp_dir().join("er_bench_trajectory_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("t.json");
        let path = file.to_str().unwrap();
        std::fs::write(
            path,
            r#"{"bench":"x","entries":[{"rows":1,"rows_per_second":2.0}]}"#,
        )
        .unwrap();
        assert_eq!(
            validate_trajectory(path, &["rows", "rows_per_second"]),
            Ok(1)
        );
        assert!(validate_trajectory(path, &["rows", "speedup"]).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn append_then_validate_round_trips() {
        #[derive(Serialize)]
        struct Entry {
            rows: usize,
            rows_per_second: f64,
        }
        let dir = std::env::temp_dir().join("er_bench_trajectory_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("rt.json");
        let path = file.to_str().unwrap();
        std::fs::remove_file(path).ok();
        append_trajectory(
            path,
            "rt",
            &Entry {
                rows: 5,
                rows_per_second: 10.0,
            },
        );
        append_trajectory(
            path,
            "rt",
            &Entry {
                rows: 6,
                rows_per_second: 11.0,
            },
        );
        assert_eq!(
            validate_trajectory(path, &["rows", "rows_per_second"]),
            Ok(2)
        );
        std::fs::remove_file(path).ok();
    }
}
