//! `ingest_bench` — throughput of the chunked out-of-core CSV ingest path.
//!
//! Builds a large CSV in memory (quoted fields with embedded commas and
//! newlines, NULL cells, mixed `\n`/`\r\n` terminators — the shapes the
//! record scanner has to get right), loads it once through the whole-file
//! loader and once through [`er_ingest::ingest_relation`]'s chunked
//! streaming path, asserts the two relations and their value pools are
//! **byte-identical**, and only then times the chunked path, reporting
//! rows/s, MiB/s, and the peak resident chunk-buffer bytes (the
//! bounded-memory claim, measured rather than asserted).
//!
//! Besides `results/ingest_bench.json`, a full (non-`--quick`) run appends
//! one entry to the repo-root `BENCH_ingest.json` trajectory file; both
//! modes then validate that the trajectory exists and is well-formed, which
//! is what `scripts/check.sh` and CI rely on.

use crate::trajectory::{append_trajectory, validate_trajectory};
use crate::ExperimentConfig;
use er_ingest::{ChunkConfig, Format, IngestConfig, SchemaMode};
use er_table::{csv, Pool, Relation};
use serde::Serialize;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

/// Repo-root perf trajectory artifact; one entry appended per full run.
const TRAJECTORY: &str = "BENCH_ingest.json";

/// Result of one ingest benchmark run (also one trajectory entry).
#[derive(Debug, Clone, Serialize)]
pub struct IngestBench {
    /// Data rows in the synthetic CSV (header excluded).
    pub rows: usize,
    /// Total CSV bytes streamed per iteration.
    pub bytes: usize,
    /// Chunks the reader split the file into.
    pub chunks: usize,
    /// Configured chunk size in bytes.
    pub chunk_bytes: usize,
    /// High-water mark of the raw chunk buffer — the peak resident bytes of
    /// the out-of-core path, independent of file size.
    pub peak_buffer_bytes: usize,
    /// Timed iterations of the chunked path.
    pub iters: usize,
    /// Chunked path: rows ingested per second.
    pub rows_per_second: f64,
    /// Chunked path: input MiB consumed per second.
    pub mib_per_second: f64,
    /// Worker threads for intra-chunk parsing (`0` = auto).
    pub threads: usize,
    /// Whether this was a `--quick` smoke run (quick runs do not enter the
    /// trajectory).
    pub quick: bool,
    /// Wall-clock seconds since the Unix epoch when the run finished.
    pub unix_seconds: u64,
}

/// Deterministic synthetic CSV with the record shapes the scanner must
/// handle: quoted fields with embedded commas and line breaks, NULL cells,
/// and mixed `\n`/`\r\n` terminators.
fn big_csv(rows: usize) -> String {
    let mut text = String::with_capacity(rows * 48);
    text.push_str("City,Region,Case,Detail\n");
    for i in 0..rows {
        let city = i % 997;
        let region = city % 31;
        match i % 1000 {
            7 => {
                text.push_str(&format!(
                    "\"C{city}, north\",R{region},patient,\"line one\nline two\"\r\n"
                ));
            }
            13 => {
                text.push_str(&format!("C{city},R{region},,\n"));
            }
            _ => {
                text.push_str(&format!("C{city},R{region},none,d{}\n", i % 17));
            }
        }
    }
    text
}

/// The byte-identity gate: every cell code and every pool slot must match
/// between the whole-file and the chunked build before timing starts.
fn assert_identical(whole: &Relation, chunked: &Relation) {
    assert_eq!(
        whole.num_rows(),
        chunked.num_rows(),
        "ingest_bench: row count diverges"
    );
    assert_eq!(
        whole.num_attrs(),
        chunked.num_attrs(),
        "ingest_bench: schema diverges"
    );
    for row in 0..whole.num_rows() {
        for attr in 0..whole.num_attrs() {
            assert_eq!(
                whole.code(row, attr),
                chunked.code(row, attr),
                "ingest_bench: cell ({row},{attr}) diverges between loaders"
            );
        }
    }
    assert_eq!(
        whole.pool().len(),
        chunked.pool().len(),
        "ingest_bench: pool size diverges"
    );
    for code in 0..u32::try_from(whole.pool().len()).unwrap_or(u32::MAX) {
        assert_eq!(
            whole.pool().value(code),
            chunked.pool().value(code),
            "ingest_bench: pool code {code} diverges between loaders"
        );
    }
}

/// Benchmark the chunked streaming ingest path; see the module docs.
pub fn ingest_bench(cfg: &ExperimentConfig) -> IngestBench {
    println!("== ingest_bench: chunked out-of-core CSV ingest ==");
    let (rows, iters) = if cfg.quick {
        (32_768usize, 2usize)
    } else {
        (262_144usize, 4usize)
    };
    let chunk_bytes = 256 * 1024;
    let text = big_csv(rows);
    let bytes = text.len();
    let config = IngestConfig {
        format: Format::Csv,
        schema: SchemaMode::Infer,
        chunk: ChunkConfig {
            chunk_bytes,
            ..ChunkConfig::default()
        },
        threads: cfg.threads,
    };

    // Correctness first: the chunked build must match the whole-file build
    // bit for bit before any number is worth reporting.
    let whole_pool = Arc::new(Pool::new());
    let whole = csv::read_str("bench", &text, Arc::clone(&whole_pool))
        .unwrap_or_else(|e| panic!("ingest_bench: whole-file load failed: {e}"));
    let (chunked, stats) = er_ingest::ingest_relation(
        "bench",
        Cursor::new(text.as_bytes()),
        Arc::new(Pool::new()),
        &config,
    )
    .unwrap_or_else(|e| panic!("ingest_bench: chunked load failed: {e}"));
    assert_identical(&whole, &chunked);
    assert_eq!(stats.rows, rows);
    println!(
        "  {} rows / {:.1} MiB in {} chunks: chunked build byte-identical to the whole-file loader",
        rows,
        bytes as f64 / (1024.0 * 1024.0),
        stats.chunks
    );

    let started = Instant::now();
    for _ in 0..iters {
        let (rel, _) = er_ingest::ingest_relation(
            "bench",
            Cursor::new(text.as_bytes()),
            Arc::new(Pool::new()),
            &config,
        )
        .unwrap_or_else(|e| panic!("ingest_bench: chunked load failed: {e}"));
        assert_eq!(rel.num_rows(), rows);
    }
    let seconds = started.elapsed().as_secs_f64().max(1e-9);

    let result = IngestBench {
        rows,
        bytes,
        chunks: stats.chunks,
        chunk_bytes,
        peak_buffer_bytes: stats.peak_buffer_bytes,
        iters,
        rows_per_second: (rows * iters) as f64 / seconds,
        mib_per_second: (bytes * iters) as f64 / (1024.0 * 1024.0) / seconds,
        threads: cfg.threads,
        quick: cfg.quick,
        unix_seconds: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    };
    println!(
        "  chunked ingest {:.0} rows/s ({:.1} MiB/s) over {} iters, peak buffer {} bytes (chunk {} bytes)",
        result.rows_per_second,
        result.mib_per_second,
        result.iters,
        result.peak_buffer_bytes,
        result.chunk_bytes
    );
    cfg.write_json("ingest_bench", &result);
    if result.quick {
        println!("  [--quick: not appended to {TRAJECTORY}]");
    } else {
        append_trajectory(TRAJECTORY, "ingest_bench", &result);
    }
    // A quick run on a fresh checkout may predate the first committed
    // trajectory entry; only an existing-but-malformed file is fatal.
    if std::path::Path::new(TRAJECTORY).exists() {
        match validate_trajectory(
            TRAJECTORY,
            &[
                "rows",
                "rows_per_second",
                "mib_per_second",
                "peak_buffer_bytes",
            ],
        ) {
            Ok(entries) => println!("  [{TRAJECTORY}: {entries} trajectory entries, well-formed]"),
            Err(e) => panic!("ingest_bench: {TRAJECTORY} is malformed: {e}"),
        }
    } else {
        println!("  [{TRAJECTORY}: no trajectory yet, well-formed output deferred to a full run]");
    }
    result
}
