//! Thread-scaling benchmarks: the same EnuMiner run at 1/2/4/8 worker
//! threads on the Fig. 9 scale (Adult, varying-master-size experiment).
//! Mining output is identical at every thread count — only wall-clock
//! should move. On a single-core host the points collapse onto the
//! sequential time (plus a small pool overhead); run on a multi-core
//! machine, or via `BENCH=1 scripts/check.sh`, for real speedup curves.

// Bench harness: a panic aborts the run loudly, which is what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use er_enuminer::EnuMinerConfig;

/// Adult at the scale Fig. 9 sweeps (small-scale master-size midpoint).
fn adult() -> Scenario {
    let paper = DatasetKind::Adult.paper_config();
    DatasetKind::Adult.build(ScenarioConfig {
        input_size: (paper.input_size / 16).max(500),
        master_size: (paper.master_size / 16).max(250),
        seed: 8,
        ..paper
    })
}

fn bench_par_speedup(c: &mut Criterion) {
    let s = adult();
    let mut group = c.benchmark_group("par_speedup");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("enuminer_adult", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut config = EnuMinerConfig::new(s.support_threshold);
                    config.max_rules_evaluated = Some(200_000);
                    config.threads = threads;
                    black_box(er_enuminer::mine(&s.task, config).evaluated)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_par_speedup
}
criterion_main!(benches);
