//! Micro-benchmarks for rule measure evaluation — the inner loop of every
//! miner (Eqs. 1–5 and the subspace search of Algorithm 4).

// Bench harness: a panic aborts the run loudly, which is what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_datagen::{DatasetKind, ScenarioConfig};
use er_rules::{ConditionSpace, ConditionSpaceConfig, EditingRule, Evaluator};

fn scenario() -> er_datagen::Scenario {
    DatasetKind::Adult.build(ScenarioConfig {
        input_size: 5000,
        master_size: 800,
        seed: 2,
        ..DatasetKind::Adult.paper_config()
    })
}

fn bench_measures(c: &mut Criterion) {
    let s = scenario();
    let task = &s.task;
    let pairs = task.candidate_lhs_pairs();
    let rule1 = EditingRule::new(vec![pairs[0]], task.target(), vec![]);
    let rule2 = EditingRule::new(vec![pairs[0], pairs[1]], task.target(), vec![]);
    let space = ConditionSpace::build(task, ConditionSpaceConfig::default());
    let cond = space
        .iter()
        .next()
        .map(|(_, _, c)| c.clone())
        .expect("condition");
    let rule_p = rule1.with_condition(cond);

    c.bench_function("measures/eval_lhs1_5000rows", |b| {
        b.iter(|| {
            let ev = Evaluator::new(task);
            black_box(ev.eval(&rule1, None))
        })
    });
    c.bench_function("measures/eval_lhs2_shared_index", |b| {
        let ev = Evaluator::new(task);
        ev.eval(&rule2, None); // warm the group index
        b.iter(|| black_box(ev.eval_on_cover(&rule2, &ev.cover(&rule2, None))))
    });
    c.bench_function("measures/pattern_cover_full_scan", |b| {
        let ev = Evaluator::new(task);
        b.iter(|| black_box(ev.cover(&rule_p, None).len()))
    });
    c.bench_function("measures/pattern_cover_subspace", |b| {
        let ev = Evaluator::new(task);
        let parent = ev.cover(&rule1, None);
        b.iter(|| black_box(ev.cover(&rule_p, Some(&parent)).len()))
    });
    c.bench_function("measures/cached_eval_lookup", |b| {
        let ev = Evaluator::new(task);
        ev.eval(&rule1, None);
        b.iter(|| black_box(ev.eval(&rule1, None)))
    });
}

fn bench_repair(c: &mut Criterion) {
    let s = scenario();
    let task = &s.task;
    let pairs = task.candidate_lhs_pairs();
    let rules: Vec<EditingRule> = (0..pairs.len().min(5))
        .map(|i| EditingRule::new(vec![pairs[i]], task.target(), vec![]))
        .collect();
    c.bench_function("repair/apply_5_rules_5000rows", |b| {
        b.iter(|| black_box(er_rules::apply_rules(task, &rules).num_predictions()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_measures, bench_repair
}
criterion_main!(benches);
