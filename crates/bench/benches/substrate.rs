//! Micro-benchmarks for the relational substrate: interning, indexing,
//! CSV parsing, row gathering, and error injection.

// Bench harness: a panic aborts the run loudly, which is what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_datagen::{DatasetKind, ScenarioConfig};
use er_table::{csv, GroupIndex, KeyIndex, Pli, Pool, Value};
use std::sync::Arc;

fn scenario() -> er_datagen::Scenario {
    DatasetKind::Covid.build(ScenarioConfig {
        input_size: 2000,
        master_size: 1000,
        seed: 1,
        ..DatasetKind::Covid.paper_config()
    })
}

fn bench_pool_intern(c: &mut Criterion) {
    c.bench_function("pool/intern_10k_mixed", |b| {
        b.iter(|| {
            let pool = Pool::new();
            for i in 0..10_000i64 {
                pool.intern(Value::Int(i % 512));
                pool.intern(Value::str(format!("v{}", i % 256)));
            }
            black_box(pool.len())
        })
    });
}

fn bench_indexes(c: &mut Criterion) {
    let s = scenario();
    let master = s.task.master().clone();
    c.bench_function("index/key_index_build_2col", |b| {
        b.iter(|| black_box(KeyIndex::build(&master, &[0, 2])))
    });
    c.bench_function("index/group_index_build_2col", |b| {
        b.iter(|| black_box(GroupIndex::build(&master, &[0, 2], 7)))
    });
    c.bench_function("index/pli_build_and_intersect", |b| {
        b.iter(|| {
            let p0 = Pli::build(&master, 0);
            let p2 = Pli::build(&master, 2);
            black_box(p0.intersect(&p2).error())
        })
    });
    let idx = KeyIndex::build(&master, &[0, 2]);
    let input = s.task.input().clone();
    c.bench_function("index/probe_2000_rows", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for row in 0..input.num_rows() {
                if let Some(rs) = idx.probe(&input, row, &[0, 2]) {
                    hits += rs.len();
                }
            }
            black_box(hits)
        })
    });
}

fn bench_csv(c: &mut Criterion) {
    let s = scenario();
    let text = csv::write_str(s.task.input());
    c.bench_function("csv/write_2000x7", |b| {
        b.iter(|| black_box(csv::write_str(s.task.input())))
    });
    c.bench_function("csv/read_2000x7", |b| {
        b.iter(|| {
            let pool = Arc::new(Pool::new());
            black_box(csv::read_str("t", &text, pool).unwrap().num_rows())
        })
    });
}

fn bench_gather(c: &mut Criterion) {
    let s = scenario();
    let input = s.task.input();
    let rows: Vec<usize> = (0..input.num_rows()).step_by(2).collect();
    c.bench_function("relation/gather_half", |b| {
        b.iter(|| black_box(input.gather(&rows)))
    });
}

fn bench_noise(c: &mut Criterion) {
    use er_datagen::{inject_errors, NoiseConfig};
    use er_table::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let schema = Schema::new(
        "t",
        vec![
            Attribute::categorical("A"),
            Attribute::categorical("B"),
            Attribute::categorical("C"),
        ],
    );
    let rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| {
            vec![
                Value::str(format!("a{}", i % 40)),
                Value::str(format!("b{}", i % 17)),
                Value::int(i % 100),
            ]
        })
        .collect();
    c.bench_function("noise/inject_2000x3_rate10", |b| {
        b.iter(|| {
            let mut r = rows.clone();
            let mut rng = StdRng::seed_from_u64(3);
            black_box(inject_errors(&mut r, &schema, NoiseConfig::rate(0.1), &mut rng).len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_pool_intern, bench_indexes, bench_csv, bench_gather, bench_noise
}
criterion_main!(benches);
