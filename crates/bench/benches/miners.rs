//! End-to-end miner benchmarks at small scale: EnuMiner, EnuMinerH3, CTANE,
//! and an RLMiner training slice. These are the Criterion counterparts of
//! the wall-clock columns in Figures 6–9 (run `experiments` for the full
//! sweeps).

// Bench harness: a panic aborts the run loudly, which is what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use er_cfd::{ctane_baseline, CtaneConfig};
use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use er_enuminer::EnuMinerConfig;
use er_rlminer::{RlMiner, RlMinerConfig};

fn covid() -> Scenario {
    DatasetKind::Covid.build(ScenarioConfig {
        input_size: 600,
        master_size: 400,
        seed: 8,
        ..DatasetKind::Covid.paper_config()
    })
}

fn location() -> Scenario {
    DatasetKind::Location.build(ScenarioConfig {
        input_size: 600,
        master_size: 400,
        seed: 8,
        ..DatasetKind::Location.paper_config()
    })
}

fn bench_enuminer(c: &mut Criterion) {
    let cov = covid();
    let loc = location();
    c.bench_function("miners/enuminer_covid_600", |b| {
        b.iter(|| {
            black_box(
                er_enuminer::mine(&cov.task, EnuMinerConfig::new(cov.support_threshold)).evaluated,
            )
        })
    });
    c.bench_function("miners/enuminer_h3_covid_600", |b| {
        b.iter(|| {
            black_box(
                er_enuminer::mine(&cov.task, EnuMinerConfig::h3(cov.support_threshold)).evaluated,
            )
        })
    });
    c.bench_function("miners/enuminer_location_600", |b| {
        b.iter(|| {
            black_box(
                er_enuminer::mine(&loc.task, EnuMinerConfig::new(loc.support_threshold)).evaluated,
            )
        })
    });
}

fn bench_ctane(c: &mut Criterion) {
    let loc = location();
    c.bench_function("miners/ctane_location_master400", |b| {
        b.iter(|| black_box(ctane_baseline(&loc.task, CtaneConfig::new(5)).0.len()))
    });
}

fn bench_rlminer(c: &mut Criterion) {
    let cov = covid();
    c.bench_function("miners/rlminer_train_500_steps_covid", |b| {
        b.iter_batched(
            || {
                let mut config = RlMinerConfig::new(cov.support_threshold);
                config.train_steps = 500;
                config.hidden = vec![64];
                RlMiner::new(&cov.task, config)
            },
            |mut miner| black_box(miner.train(&cov.task).steps),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("miners/rlminer_inference_covid", |b| {
        let mut config = RlMinerConfig::new(cov.support_threshold);
        config.train_steps = 1000;
        config.hidden = vec![64];
        let mut miner = RlMiner::new(&cov.task, config);
        miner.train(&cov.task);
        b.iter(|| black_box(miner.mine(&cov.task).rules.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_enuminer, bench_ctane, bench_rlminer
}
criterion_main!(benches);
