//! Micro-benchmarks for the RL substrate and RLMiner's per-step machinery:
//! value-network forward/backward, DQN learn steps, state encoding, and
//! mask computation.

// Bench harness: a panic aborts the run loudly, which is what we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use er_datagen::{DatasetKind, ScenarioConfig};
use er_rl::{DqnAgent, DqnConfig, Mat, Mlp, Transition};
use er_rlminer::{compute_mask, MinerEnv, RewardConfig, StateEncoder};
use er_rules::{ConditionSpaceConfig, EditingRule};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mlp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut mlp = Mlp::new(&[256, 128, 128, 257], &mut rng);
    let x = Mat::from_vec(
        32,
        256,
        (0..32 * 256).map(|i| (i % 7) as f32 / 7.0).collect(),
    );
    c.bench_function("rl/mlp_forward_batch32", |b| {
        b.iter(|| black_box(mlp.forward(&x)))
    });
    c.bench_function("rl/mlp_forward_backward_batch32", |b| {
        b.iter(|| {
            mlp.zero_grad();
            let y = mlp.forward_train(&x);
            let grad = Mat::from_vec(32, 257, vec![0.01; 32 * 257]);
            mlp.backward(&grad);
            black_box(y.get(0, 0))
        })
    });
}

fn bench_dqn(c: &mut Criterion) {
    let mut cfg = DqnConfig::new(256, 257);
    cfg.seed = 5;
    let mut agent = DqnAgent::new(cfg);
    let mask = vec![true; 257];
    let state = vec![0.5f32; 256];
    for _ in 0..128 {
        agent.observe(Transition {
            state: state.clone(),
            action: 3,
            reward: 0.5,
            next: Some((state.clone(), mask.clone())),
        });
    }
    c.bench_function("rl/dqn_select_action", |b| {
        b.iter(|| black_box(agent.select_action(&state, &mask)))
    });
    c.bench_function("rl/dqn_learn_step_batch32", |b| {
        b.iter(|| black_box(agent.learn()))
    });
}

fn bench_rlminer_step(c: &mut Criterion) {
    let s = DatasetKind::Covid.build(ScenarioConfig {
        input_size: 1000,
        master_size: 700,
        seed: 6,
        ..DatasetKind::Covid.paper_config()
    });
    let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
    c.bench_function("rlminer/state_encode", |b| {
        let rule = EditingRule::root(s.task.target());
        b.iter(|| black_box(enc.encode(&rule)))
    });
    c.bench_function("rlminer/mask_at_root", |b| {
        let env = MinerEnv::new(&s.task, &enc, RewardConfig::new(10), 50);
        let _ = &env;
        let rule = EditingRule::root(s.task.target());
        b.iter(|| black_box(compute_mask(&enc, &rule, None)))
    });
    c.bench_function("rlminer/env_episode_50_random_steps", |b| {
        b.iter(|| {
            let mut env = MinerEnv::new(&s.task, &enc, RewardConfig::normalized(10, 1000), 50);
            let mut taken = 0;
            'outer: for a in 0..enc.action_dim() {
                if a == enc.stop_action() {
                    continue;
                }
                let out = env.step(a);
                taken += 1;
                if out.done || taken >= 50 {
                    break 'outer;
                }
            }
            black_box(env.tree().num_discovered())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_mlp, bench_dqn, bench_rlminer_step
}
criterion_main!(benches);
