//! Rule-order invariance under a confluence certificate: the whole point of
//! certifying a rule set (ER013/ER014 clean) is that the chase result no
//! longer depends on the order rules are listed, so any engine may fold
//! votes in whatever order work completes. This property test shuffles the
//! rule list with a seeded RNG and demands bitwise-identical repair output
//! on every permutation — on the ordered path *and* on the certificate-
//! gated unordered path. A deliberately non-confluent set guards against
//! vacuity: the pass must refuse to certify it.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_analyze::AnalyzeConfig;
use er_lint::DiagnosticCode;
use er_rules::{BatchRepairer, EditingRule, RepairReport, TargetRules};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

fn schema(name: &str) -> Arc<Schema> {
    Arc::new(Schema::new(
        name,
        vec![
            Attribute::categorical("K"),
            Attribute::categorical("A"),
            Attribute::categorical("T"),
        ],
    ))
}

/// A master where T is a function of K and every group size is a power of
/// two (8 rows per K, 2 per (K, A)): each rule's vote contribution is an
/// exact dyadic rational, so score sums are exact in f64 and a bitwise
/// comparison across summation orders is meaningful, not luck.
fn confluent_fixture() -> (Arc<Schema>, Relation, Relation) {
    let pool = Arc::new(Pool::new());
    let in_schema = schema("in");
    let s = |v: String| Value::str(v);
    let mut bm = RelationBuilder::new(schema("m"), Arc::clone(&pool));
    for k in 0..8 {
        for a in 0..4 {
            for _ in 0..2 {
                bm.push_row(vec![
                    s(format!("k{k}")),
                    s(format!("a{a}")),
                    s(format!("t{}", k % 5)),
                ])
                .unwrap();
            }
        }
    }
    let master = bm.finish();
    let mut bi = RelationBuilder::new(Arc::clone(&in_schema), pool);
    for row in 0..40 {
        bi.push_row(vec![
            s(format!("k{}", row % 8)),
            s(format!("a{}", row % 4)),
            Value::Null,
        ])
        .unwrap();
    }
    let input = bi.finish();
    (in_schema, master, input)
}

fn repair(master: &Relation, rules: &[EditingRule], unordered: bool) -> BatchRepairer {
    let mut repairer = BatchRepairer::new(master.clone(), (2, 2), rules.to_vec(), 2).unwrap();
    repairer.set_unordered(unordered);
    repairer
}

#[test]
fn certified_set_is_rule_order_invariant() {
    let (in_schema, master, input) = confluent_fixture();
    let target = (2, 2);
    let rules = vec![
        EditingRule::new(vec![(0, 0)], target, vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], target, vec![]),
        EditingRule::new(vec![(1, 1), (0, 0)], target, vec![]),
    ];
    let baseline = repair(&master, &rules, false).repair_batch(&input).unwrap();
    assert!(baseline.num_predictions() > 0, "fixture must predict");
    let bits = |r: &RepairReport| r.scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    let mut rng = StdRng::seed_from_u64(20260809);
    let mut order: Vec<usize> = (0..rules.len()).collect();
    for round in 0..8 {
        order.shuffle(&mut rng);
        let shuffled: Vec<EditingRule> = order.iter().map(|&i| rules[i].clone()).collect();
        // Certify the *shuffled* listing: the certificate itself must not
        // depend on rule order.
        let report = er_analyze::analyze(
            &in_schema,
            &master,
            &[TargetRules {
                target,
                rules: shuffled.clone(),
            }],
            &AnalyzeConfig::with_threads(2),
        );
        assert!(
            report.confluence.certified,
            "round {round}: shuffle {order:?} must still certify"
        );
        for unordered in [false, true] {
            let run = repair(&master, &shuffled, unordered)
                .repair_batch(&input)
                .unwrap();
            assert_eq!(
                run.predictions, baseline.predictions,
                "round {round}: predictions diverged under order {order:?} (unordered={unordered})"
            );
            assert_eq!(
                bits(&run),
                bits(&baseline),
                "round {round}: scores diverged bitwise under order {order:?} (unordered={unordered})"
            );
            assert_eq!(
                run.candidates, baseline.candidates,
                "round {round}: candidate counts diverged under order {order:?} (unordered={unordered})"
            );
        }
    }
}

/// Non-vacuity guard: a set whose critical pair genuinely diverges must be
/// refused a certificate (with an ER013 witness), otherwise the shuffle
/// test above proves nothing about what certification licenses.
#[test]
fn divergent_set_is_refused_a_certificate() {
    let pool = Arc::new(Pool::new());
    let in_schema = schema("in");
    let s = |v: &str| Value::str(v.to_string());
    // Joint witness (k0, a0): the K-rule's group is {t0, t1, t1} (modal t1)
    // while the A-rule's group is {t0} (modal t0), and the exact
    // cross-multiplied vote picks t0 strictly — a two-order counterexample.
    let mut bm = RelationBuilder::new(schema("m"), pool);
    bm.push_row(vec![s("k0"), s("a0"), s("t0")]).unwrap();
    bm.push_row(vec![s("k0"), s("a1"), s("t1")]).unwrap();
    bm.push_row(vec![s("k0"), s("a1"), s("t1")]).unwrap();
    let master = bm.finish();
    let target = (2, 2);
    let rules = vec![
        EditingRule::new(vec![(0, 0)], target, vec![]),
        EditingRule::new(vec![(1, 1)], target, vec![]),
    ];
    let report = er_analyze::analyze(
        &in_schema,
        &master,
        &[TargetRules { target, rules }],
        &AnalyzeConfig::with_threads(2),
    );
    assert!(
        !report.confluence.certified,
        "divergent pair must deny the certificate: {}",
        report.render_text()
    );
    assert!(
        !report.confluence.divergent.is_empty(),
        "the refusal must carry a two-order witness"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.code == DiagnosticCode::Er013),
        "ER013 must be reported: {}",
        report.render_text()
    );
}
