//! Thread-count invariance: mining the same task at 1, 2, and 8 worker
//! threads must produce byte-identical results — the same rules in the same
//! order with the same measures, and the same work counters. Parallelism is
//! a wall-clock optimisation only; it must never change what is mined.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_analyze::AnalyzeConfig;
use er_datagen::{DatasetKind, Scenario, ScenarioConfig};
use er_enuminer::EnuMinerConfig;
use er_rlminer::{RlMiner, RlMinerConfig};
use er_rules::{BatchRepairer, EditingRule, TargetRules};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn covid() -> Scenario {
    DatasetKind::Covid.build(ScenarioConfig {
        input_size: 400,
        master_size: 200,
        seed: 11,
        ..DatasetKind::Covid.paper_config()
    })
}

#[test]
fn enuminer_output_is_thread_count_invariant() {
    let s = covid();
    let runs: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let mut config = EnuMinerConfig::new(s.support_threshold);
            config.threads = threads;
            er_enuminer::mine(&s.task, config)
        })
        .collect();
    let base = &runs[0];
    assert!(!base.rules.is_empty(), "fixture must discover rules");
    for (run, threads) in runs.iter().zip(THREAD_COUNTS).skip(1) {
        assert_eq!(
            run.rules, base.rules,
            "rule list diverged at {threads} threads"
        );
        assert_eq!(
            run.evaluated, base.evaluated,
            "evaluated counter diverged at {threads} threads"
        );
        assert_eq!(
            run.expanded, base.expanded,
            "expanded counter diverged at {threads} threads"
        );
    }
}

/// Budget truncation cuts the run mid-level; the cut point (and therefore
/// every counter) must land on the same candidate at any thread count.
#[test]
fn enuminer_budget_truncation_is_thread_count_invariant() {
    let s = covid();
    let runs: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let mut config = EnuMinerConfig::new(s.support_threshold);
            config.max_rules_evaluated = Some(50);
            config.threads = threads;
            er_enuminer::mine(&s.task, config)
        })
        .collect();
    let base = &runs[0];
    assert!(base.evaluated <= 50);
    for (run, threads) in runs.iter().zip(THREAD_COUNTS).skip(1) {
        assert_eq!(
            (&run.rules, run.evaluated, run.expanded),
            (&base.rules, base.evaluated, base.expanded),
            "budget-truncated run diverged at {threads} threads"
        );
    }
}

/// The analyzer's conflict and reachability passes fan out over the worker
/// pool; the rendered report — witnesses, findings, and all — must be
/// byte-identical at any thread count.
#[test]
fn analyzer_report_is_thread_count_invariant() {
    let s = er_datagen::figure1();
    // Figure-1 attribute ids: input Name=0 City=1 ZIP=2 AC=3, Case=6;
    // master FN=0 City=2 ZIP=3 AC=4, Case=7. A mix rich enough to light up
    // every pass: comparable pairs (conflicts), a City → ZIP → AC chain
    // (termination order), and several candidate pairs for the fan-out.
    let targets = vec![
        TargetRules {
            target: (6, 7),
            rules: vec![
                EditingRule::new(vec![(0, 0)], (6, 7), vec![]),
                EditingRule::new(vec![(0, 0), (1, 2)], (6, 7), vec![]),
                EditingRule::new(vec![(1, 2)], (6, 7), vec![]),
                EditingRule::new(vec![(1, 2), (2, 3)], (6, 7), vec![]),
            ],
        },
        TargetRules {
            target: (2, 3),
            rules: vec![EditingRule::new(vec![(1, 2)], (2, 3), vec![])],
        },
        TargetRules {
            target: (3, 4),
            rules: vec![EditingRule::new(vec![(2, 3)], (3, 4), vec![])],
        },
    ];
    let input_schema = s.task.input().schema();
    let master = s.task.master();
    let reports: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            er_analyze::analyze(
                input_schema,
                master,
                &targets,
                &AnalyzeConfig::with_threads(threads),
            )
        })
        .collect();
    let base = &reports[0];
    assert!(
        !base.conflicts.is_empty(),
        "fixture must exercise the conflict fan-out"
    );
    assert!(base.termination.certified);
    for (report, threads) in reports.iter().zip(THREAD_COUNTS).skip(1) {
        assert_eq!(
            report.render_json(),
            base.render_json(),
            "analysis JSON diverged at {threads} threads"
        );
        assert_eq!(
            report.render_text(),
            base.render_text(),
            "analysis text diverged at {threads} threads"
        );
    }
}

/// The diff pass fans its per-signature verdict recomputation out over the
/// worker pool; the rendered edit-scope report — changed signatures,
/// witnesses, ER011/ER012 findings — must be byte-identical at any thread
/// count.
#[test]
fn diff_report_is_thread_count_invariant() {
    let s = er_datagen::figure1();
    let old_json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/figure1_rules.json"
    ))
    .unwrap();
    let new_json = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/figure1_rules_v2.json"
    ))
    .unwrap();
    // A scope narrower than the actual edit, so the reports carry both
    // ER011 infos and ER012 errors.
    let scope = er_analyze::EditScope::from_json(r#"{"Date":"2021-10"}"#).unwrap();
    let reports: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            er_analyze::diff_json(
                &old_json,
                &new_json,
                &s.task,
                Some(&scope),
                &AnalyzeConfig::with_threads(threads),
            )
            .unwrap()
        })
        .collect();
    let base = &reports[0];
    assert_eq!(base.changes.len(), 2, "fixture must exercise the fan-out");
    assert!(base.errors() > 0, "scope must be violated in this fixture");
    for (report, threads) in reports.iter().zip(THREAD_COUNTS).skip(1) {
        assert_eq!(
            report.render_json(),
            base.render_json(),
            "diff JSON diverged at {threads} threads"
        );
        assert_eq!(
            report.render_text(),
            base.render_text(),
            "diff text diverged at {threads} threads"
        );
    }
}

/// The signature-batched repair path fans its LHS groups out over the
/// worker pool; the report — predictions, scores *bit for bit*, candidate
/// counts — must be byte-identical at any thread count, and identical to
/// the row-at-a-time reference path.
#[test]
fn batched_repair_is_thread_count_invariant() {
    let s = covid();
    let task = &s.task;
    let target = task.target();
    let pairs = task.candidate_lhs_pairs();
    let mut rules: Vec<EditingRule> = pairs
        .iter()
        .map(|&p| EditingRule::new(vec![p], target, vec![]))
        .collect();
    for window in pairs.windows(2) {
        rules.push(EditingRule::new(window.to_vec(), target, vec![]));
    }
    let runs: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let repairer =
                BatchRepairer::new(task.master().clone(), target, rules.clone(), threads).unwrap();
            let batched = repairer.repair_batch(task.input()).unwrap();
            let reference = repairer.repair_batch_reference(task.input()).unwrap();
            (batched, reference)
        })
        .collect();
    let (base, _) = &runs[0];
    assert!(base.num_predictions() > 0, "fixture must predict something");
    let bits =
        |r: &er_rules::RepairReport| r.scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for ((batched, reference), threads) in runs.iter().zip(THREAD_COUNTS) {
        assert_eq!(
            batched.predictions, base.predictions,
            "predictions diverged at {threads} threads"
        );
        assert_eq!(
            bits(batched),
            bits(base),
            "scores diverged bitwise at {threads} threads"
        );
        assert_eq!(
            batched.candidates, base.candidates,
            "candidate counts diverged at {threads} threads"
        );
        assert_eq!(
            bits(batched),
            bits(reference),
            "batched and reference paths diverged at {threads} threads"
        );
        assert_eq!(batched.predictions, reference.predictions);
    }
}

/// The sharded serving tier partitions the master by the rules' common LHS
/// routing pair and fans requests out per shard; at every shard count ×
/// thread count combination the answers must be byte-identical to the
/// unsharded `BatchRepairer`.
#[test]
fn sharded_repair_is_shard_and_thread_count_invariant() {
    const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
    let s = covid();
    let task = &s.task;
    let target = task.target();
    let pairs = task.candidate_lhs_pairs();
    // Anchor every rule on pairs[0] so the set has a common routing pair
    // and multi-shard placement is non-degenerate.
    let mut rules = vec![EditingRule::new(vec![pairs[0]], target, vec![])];
    for &p in &pairs[1..] {
        rules.push(EditingRule::new(vec![pairs[0], p], target, vec![]));
    }
    let reference = BatchRepairer::new(task.master().clone(), target, rules.clone(), 1)
        .unwrap()
        .repair_batch(task.input())
        .unwrap();
    assert!(reference.num_predictions() > 0, "fixture must predict");
    let bits = |scores: &[f64]| scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let engine = er_shard::ShardedEngine::new(
                task.master().clone(),
                target,
                rules.clone(),
                threads,
                shards,
            )
            .unwrap();
            let run = engine.repair_batch(task.input(), None).unwrap();
            assert_eq!(
                run.predictions, reference.predictions,
                "predictions diverged at {shards} shards / {threads} threads"
            );
            assert_eq!(
                bits(&run.scores),
                bits(&reference.scores),
                "scores diverged bitwise at {shards} shards / {threads} threads"
            );
            assert_eq!(
                run.candidates, reference.candidates,
                "candidate counts diverged at {shards} shards / {threads} threads"
            );
        }
    }
}

/// The certificate-gated commutative fold: a rule set the er-analyze
/// confluence pass certifies licenses `unordered_fold` inside every shard
/// and arrival-order merging across shards. At every shard count × thread
/// count combination the stamped (unordered) run must be byte-identical to
/// the unstamped (ordered) run and to the 1-shard/1-thread reference.
#[test]
fn certified_unordered_fold_is_shard_and_thread_count_invariant() {
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
    let pool = Arc::new(Pool::new());
    let attrs = || {
        vec![
            Attribute::categorical("K"),
            Attribute::categorical("A"),
            Attribute::categorical("T"),
        ]
    };
    let in_schema = Arc::new(Schema::new("in", attrs()));
    let m_schema = Arc::new(Schema::new("m", attrs()));
    let s = |v: String| Value::str(v);
    // Master where T is a function of the routing key K: every critical
    // pair joins (any joint witness agrees on the modal), so the set
    // certifies honestly — the pass below must find zero divergences.
    let mut bm = RelationBuilder::new(m_schema, Arc::clone(&pool));
    for k in 0..8 {
        for a in 0..4 {
            for _ in 0..(1 + (k + a) % 3) {
                bm.push_row(vec![
                    s(format!("k{k}")),
                    s(format!("a{a}")),
                    s(format!("t{}", k % 5)),
                ])
                .unwrap();
            }
        }
    }
    let master = bm.finish();
    let mut bi = RelationBuilder::new(Arc::clone(&in_schema), pool);
    for row in 0..48 {
        let k = row % 8;
        bi.push_row(vec![
            s(format!("k{k}")),
            s(format!("a{}", row % 4)),
            Value::Null,
        ])
        .unwrap();
    }
    // A NULL routing key exercises the broadcast path under both merges.
    bi.push_row(vec![Value::Null, s("a0".into()), Value::Null])
        .unwrap();
    let input = bi.finish();
    let target = (2, 2);
    // Every rule anchors the routing pair (K, K), so multi-shard placement
    // is non-degenerate and the pairwise unifications are non-trivial.
    let rules = vec![
        EditingRule::new(vec![(0, 0)], target, vec![]),
        EditingRule::new(vec![(0, 0), (1, 1)], target, vec![]),
        EditingRule::new(vec![(1, 1), (0, 0)], target, vec![]),
    ];
    let targets = [TargetRules {
        target,
        rules: rules.clone(),
    }];
    let reference = BatchRepairer::new(master.clone(), target, rules.clone(), 1)
        .unwrap()
        .repair_batch(&input)
        .unwrap();
    assert!(reference.num_predictions() > 0, "fixture must predict");
    let bits = |scores: &[f64]| scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let engine = er_shard::ShardedEngine::new(
                master.clone(),
                target,
                rules.clone(),
                threads,
                shards,
            )
            .unwrap();
            let ordered = engine.repair_batch(&input, None).unwrap();
            // Certify honestly: run the confluence pass, then stamp the
            // engine at its live aggregate generation — exactly what
            // `er-serve` does on reload/append.
            let report = er_analyze::analyze(
                &in_schema,
                &master,
                &targets,
                &AnalyzeConfig::with_threads(threads),
            );
            assert!(
                report.confluence.certified,
                "functionally determined fixture must certify: {}",
                report.render_text()
            );
            assert_eq!(
                report.confluence.generation,
                engine.read_view().generation()
            );
            assert!(engine.set_confluence_stamp(report.confluence.generation));
            assert!(engine.confluence_certified());
            let unordered = engine.repair_batch(&input, None).unwrap();
            assert_eq!(
                unordered.predictions, ordered.predictions,
                "stamped predictions diverged at {shards} shards / {threads} threads"
            );
            assert_eq!(
                bits(&unordered.scores),
                bits(&ordered.scores),
                "stamped scores diverged bitwise at {shards} shards / {threads} threads"
            );
            assert_eq!(
                unordered.candidates, ordered.candidates,
                "stamped candidate counts diverged at {shards} shards / {threads} threads"
            );
            assert_eq!(
                unordered.predictions, reference.predictions,
                "predictions diverged from the reference at {shards} shards / {threads} threads"
            );
            assert_eq!(
                bits(&unordered.scores),
                bits(&reference.scores),
                "scores diverged bitwise from the reference at {shards} shards / {threads} threads"
            );
        }
    }
}

/// The RLMiner path: training (mask refresh via the evaluator pool) and the
/// greedy re-evaluation sweep in `mine` both fan out; with a fixed seed the
/// whole train-then-mine pipeline must be identical at any thread count.
#[test]
fn rlminer_output_is_thread_count_invariant() {
    let s = covid();
    let runs: Vec<_> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let mut config = RlMinerConfig::new(s.support_threshold);
            config.train_steps = 300;
            config.hidden = vec![32];
            config.seed = 7;
            config.threads = threads;
            let mut miner = RlMiner::new(&s.task, config);
            let stats = miner.train(&s.task);
            (stats.fresh_evaluations, miner.mine(&s.task))
        })
        .collect();
    let (base_fresh, base) = &runs[0];
    assert!(!base.rules.is_empty(), "fixture must discover rules");
    for ((fresh, run), threads) in runs.iter().zip(THREAD_COUNTS).skip(1) {
        assert_eq!(
            run.rules, base.rules,
            "rule list diverged at {threads} threads"
        );
        assert_eq!(
            fresh, base_fresh,
            "fresh-evaluation counter diverged at {threads} threads"
        );
        assert_eq!(
            run.discovered, base.discovered,
            "discovered counter diverged at {threads} threads"
        );
    }
}
