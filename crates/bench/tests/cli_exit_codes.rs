//! Exit-code contract of the `experiments` CLI subcommands: 0 for clean and
//! warnings-only reports, 1 when a report carries errors, 2 for usage and
//! IO problems. A warning (e.g. an ER010 dead rule or an ER011 verdict
//! change) must never fail a pipeline that only gates on errors.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_lint::DiagnosticCode;
use std::path::PathBuf;
use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn repo_path(rel: &str) -> String {
    format!("{}/../../{}", env!("CARGO_MANIFEST_DIR"), rel)
}

/// A scratch file under the target-specific temp dir, cleaned up by the OS.
fn scratch(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("er-cli-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

fn out_path(name: &str) -> PathBuf {
    std::env::temp_dir().join("er-cli-exit-codes").join(name)
}

#[test]
fn analyze_exits_zero_on_warnings_only_reports() {
    // A rule whose pattern pins City to a value the figure-1 master never
    // holds: statically dead, diagnosed ER010 — a warning, not an error.
    let rules = scratch(
        "dead_rule.json",
        r#"[{"lhs":[["City","City"]],"target":["Case","Case"],
            "pattern":[{"Eq":{"attr":"City","value":"Nowhereville","numeric":false}}],
            "measures":null}]"#,
    );
    let output = experiments()
        .args(["analyze", "--out"])
        .arg(out_path("analyze-dead.json"))
        .arg(&rules)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(DiagnosticCode::Er010.as_str()), "{stdout}");
    assert!(
        output.status.success(),
        "warnings-only analysis must exit 0, got {:?}\n{stdout}",
        output.status.code()
    );
}

#[test]
fn analyze_exits_one_on_errors_and_two_on_usage() {
    let output = experiments()
        .args(["analyze", "--out"])
        .arg(out_path("analyze-conflicting.json"))
        .arg(repo_path("examples/conflicting_rules.json"))
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(1), "ER009 errors must exit 1");
    let output = experiments().arg("analyze").output().unwrap();
    assert_eq!(output.status.code(), Some(2), "missing path must exit 2");
}

#[test]
fn diff_exit_codes_follow_the_report_severity() {
    let v1 = repo_path("examples/figure1_rules.json");
    let v2 = repo_path("examples/figure1_rules_v2.json");
    // Identical versions: certified equivalent, exit 0.
    let output = experiments()
        .args(["diff", "--out"])
        .arg(out_path("diff-same.json"))
        .args([&v1, &v1])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("CERTIFIED"), "{stdout}");
    assert_eq!(output.status.code(), Some(0));
    // Unscoped v1 -> v2: ER011 infos only, exit 0.
    let output = experiments()
        .args(["diff", "--out"])
        .arg(out_path("diff-v2.json"))
        .args([&v1, &v2])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(DiagnosticCode::Er011.as_str()), "{stdout}");
    assert_eq!(output.status.code(), Some(0), "infos must not fail the CLI");
    // A scope that does not cover the change: ER012, exit 1.
    let output = experiments()
        .args(["diff", "--scope", r#"{"Date":"2021-12"}"#, "--out"])
        .arg(out_path("diff-scoped.json"))
        .args([&v1, &v2])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(DiagnosticCode::Er012.as_str()), "{stdout}");
    assert_eq!(output.status.code(), Some(1));
    // Usage problems: exit 2.
    let output = experiments().args(["diff"]).arg(&v1).output().unwrap();
    assert_eq!(output.status.code(), Some(2), "one path must exit 2");
    let output = experiments()
        .args(["diff", "--scope", "not json"])
        .args([&v1, &v2])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "bad scope must exit 2");
}
