//! Smoke tests for the experiment harness: each runner executes end to end
//! at a micro scale and produces structurally sound results.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_bench::{ExperimentConfig, Scale};

fn micro() -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Small,
        repeats: 1,
        train_steps: 300,
        enu_budget: Some(5_000),
        threads: 0,
        quick: false,
        out_dir: std::env::temp_dir().join("erminer_bench_smoke"),
    }
}

#[test]
fn table1_reports_all_datasets() {
    let rows = er_bench::table1(&micro());
    assert_eq!(rows.len(), 4);
    let names: Vec<&str> = rows.iter().map(|r| r.dataset.as_str()).collect();
    assert_eq!(names, vec!["adult", "covid", "nursery", "location"]);
    for r in &rows {
        assert!(r.input_rows > 0 && r.master_rows > 0);
        assert!(r.support_threshold > 0);
    }
    // JSON artefacts land in the out dir.
    assert!(micro().out_dir.join("table1.json").exists());
}

#[test]
fn sweep_points_are_structurally_sound() {
    // fig6 at micro scale: 5 noise rates × 2 methods.
    let points = er_bench::fig6(&micro());
    assert_eq!(points.len(), 10);
    for p in &points {
        assert!(p.f1 >= 0.0 && p.f1 <= 1.0);
        assert!(p.precision >= 0.0 && p.precision <= 1.0);
        assert!(p.seconds >= 0.0);
        assert!(p.method == "EnuMiner" || p.method == "RLMiner");
    }
    // Noise rates appear in ascending pairs.
    let xs: Vec<f64> = points.iter().step_by(2).map(|p| p.x).collect();
    assert_eq!(xs, vec![0.0, 0.05, 0.10, 0.15, 0.20]);
}

#[test]
fn fig12_counts_training_and_inference() {
    let rows = er_bench::fig12(&micro());
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert_eq!(r.train_steps, 300);
        assert_eq!(r.finetune_steps, 100);
        assert!(r.inference_steps > 0);
        assert!(r.train_seconds > 0.0);
        assert!(r.finetune_seconds < r.train_seconds);
    }
}
