//! Adversarial equivalence for the signature-batched repair path: on
//! batches built to stress every corner of the grouping — NULL-heavy keys,
//! continuous-attribute patterns, all rows collapsing to one signature,
//! every row a distinct signature — the batched report must be
//! **byte-identical** (predictions, scores bit for bit, candidate counts)
//! to both the row-at-a-time reference path and the one-shot
//! `apply_rules`, at 1, 2, and 8 worker threads.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_rules::{
    apply_rules_with, BatchRepairer, Condition, EditingRule, Evaluator, RepairReport, SchemaMatch,
    Task,
};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Input schema [City, Age, Case], master schema [City, Age, Infection],
/// matched 1:1 with target (2, 2). Age is continuous on both sides so
/// pattern rules can carry range conditions.
fn schemas() -> (Arc<Schema>, Arc<Schema>) {
    let input = Arc::new(Schema::new(
        "in",
        vec![
            Attribute::categorical("City"),
            Attribute::continuous("Age"),
            Attribute::categorical("Case"),
        ],
    ));
    let master = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("City"),
            Attribute::continuous("Age"),
            Attribute::categorical("Infection"),
        ],
    ));
    (input, master)
}

/// A master with a known, slightly contested vote distribution per city.
fn master_relation(pool: Arc<Pool>) -> Relation {
    let (_, m_schema) = schemas();
    let mut b = RelationBuilder::new(m_schema, pool);
    for city in 0..24 {
        let majority = if city % 2 == 0 { "patient" } else { "imports" };
        for i in 0..3 {
            let inf = if i == 2 && city % 3 == 0 {
                "flu"
            } else {
                majority
            };
            b.push_row(vec![
                Value::str(format!("C{city}")),
                Value::float(20.0 + city as f64),
                Value::str(inf),
            ])
            .unwrap();
        }
    }
    b.finish()
}

/// Rules sharing one LHS group, mixing pattern-free, equality-pattern, and
/// continuous-range-pattern rules.
fn rules(pool: &Pool) -> Vec<EditingRule> {
    let c1 = pool.code_of(&Value::str("C1")).unwrap();
    vec![
        EditingRule::new(vec![(0, 0)], (2, 2), vec![]),
        EditingRule::new(vec![(0, 0)], (2, 2), vec![Condition::range(1, 25.0, 60.0)]),
        EditingRule::new(vec![(0, 0)], (2, 2), vec![Condition::eq(0, c1)]),
    ]
}

fn assert_reports_bitwise_equal(a: &RepairReport, b: &RepairReport, what: &str) {
    assert_eq!(a.predictions, b.predictions, "{what}: predictions diverged");
    let bits = |r: &RepairReport| r.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(a), bits(b), "{what}: scores diverged bitwise");
    assert_eq!(a.candidates, b.candidates, "{what}: candidates diverged");
    assert_eq!(
        a.rules_applied, b.rules_applied,
        "{what}: rules_applied diverged"
    );
}

/// The shared harness: for every thread count, the batched path must match
/// the row-at-a-time reference and the one-shot `apply_rules` bit for bit,
/// and all thread counts must agree with each other.
fn assert_equivalent_everywhere(input: Relation, master: Relation, scenario: &str) {
    let rules = rules(input.pool());
    let mut baseline: Option<RepairReport> = None;
    for &threads in &THREAD_COUNTS {
        let repairer = BatchRepairer::new(master.clone(), (2, 2), rules.clone(), threads).unwrap();
        let batched = repairer.repair_batch(&input).unwrap();
        let reference = repairer.repair_batch_reference(&input).unwrap();
        assert_reports_bitwise_equal(
            &batched,
            &reference,
            &format!("{scenario} vs reference @ {threads} threads"),
        );
        let task = Task::new(
            input.clone(),
            master.clone(),
            SchemaMatch::from_pairs(3, &[(0, 0), (1, 1), (2, 2)]),
            (2, 2),
        );
        let ev = Evaluator::with_threads(&task, threads);
        let oneshot = apply_rules_with(&ev, &rules);
        assert_reports_bitwise_equal(
            &batched,
            &oneshot,
            &format!("{scenario} vs apply_rules @ {threads} threads"),
        );
        match &baseline {
            None => baseline = Some(batched),
            Some(base) => assert_reports_bitwise_equal(
                &batched,
                base,
                &format!("{scenario} across thread counts ({threads})"),
            ),
        }
    }
}

fn input_builder(pool: Arc<Pool>) -> RelationBuilder {
    let (in_schema, _) = schemas();
    RelationBuilder::new(in_schema, pool)
}

#[test]
fn null_heavy_keys() {
    let pool = Arc::new(Pool::new());
    let master = master_relation(Arc::clone(&pool));
    let mut b = input_builder(pool);
    // Every third row has a NULL key (and must never vote); ages alternate
    // in and out of the range pattern; a few rows are NULL everywhere.
    for i in 0..120 {
        let city = if i % 3 == 0 {
            Value::Null
        } else {
            Value::str(format!("C{}", i % 24))
        };
        let age = if i % 5 == 0 {
            Value::Null
        } else {
            Value::float(18.0 + (i % 50) as f64)
        };
        b.push_row(vec![city, age, Value::Null]).unwrap();
    }
    b.push_row(vec![Value::Null, Value::Null, Value::Null])
        .unwrap();
    assert_equivalent_everywhere(b.finish(), master, "null-heavy");
}

#[test]
fn continuous_attribute_patterns() {
    let pool = Arc::new(Pool::new());
    let master = master_relation(Arc::clone(&pool));
    let mut b = input_builder(pool);
    // Ages straddle the [25, 60] range boundary, including the exact
    // endpoints, so the pattern rule covers a strict, boundary-sensitive
    // subset of each signature's rows.
    for i in 0..100 {
        let age = match i % 5 {
            0 => Value::float(24.999),
            1 => Value::float(25.0),
            2 => Value::float(42.0),
            3 => Value::float(60.0),
            _ => Value::Null,
        };
        b.push_row(vec![Value::str(format!("C{}", i % 24)), age, Value::Null])
            .unwrap();
    }
    assert_equivalent_everywhere(b.finish(), master, "continuous-patterns");
}

#[test]
fn all_rows_one_signature() {
    let pool = Arc::new(Pool::new());
    let master = master_relation(Arc::clone(&pool));
    let mut b = input_builder(pool);
    // One giant signature group: the grouping must collapse everything to a
    // single probe and still emit per-row votes identical to the reference.
    for i in 0..256 {
        b.push_row(vec![
            Value::str("C1"),
            Value::float(20.0 + (i % 3) as f64 * 20.0),
            Value::Null,
        ])
        .unwrap();
    }
    assert_equivalent_everywhere(b.finish(), master, "one-signature");
}

#[test]
fn every_row_distinct_signature() {
    let pool = Arc::new(Pool::new());
    let master = master_relation(Arc::clone(&pool));
    let mut b = input_builder(pool);
    // Every row its own signature — half matching master cities, half
    // unknown (empty distributions) — the degenerate case where batching
    // wins nothing but must still agree exactly.
    for i in 0..80 {
        let city = if i % 2 == 0 {
            format!("C{i}") // known to the master only while i < 24
        } else {
            format!("X{i}")
        };
        b.push_row(vec![
            Value::str(city),
            Value::float(30.0 + i as f64),
            Value::Null,
        ])
        .unwrap();
    }
    assert_equivalent_everywhere(b.finish(), master, "distinct-signatures");
}
