//! Property-based tests for the dataset substrate.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{inject_errors, sample_indices, split_with_duplicate_rate, NoiseConfig};
use er_table::{Attribute, Schema, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The injection log is a complete, exact undo script: applying the
    /// originals restores the clean matrix.
    #[test]
    fn injection_log_is_an_undo_script(
        seed in 0u64..500,
        rate in 0.0f64..0.5,
        n in 1usize..60,
    ) {
        let schema = Schema::new(
            "t",
            vec![Attribute::categorical("A"), Attribute::categorical("B")],
        );
        let clean: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::str(format!("a{}", i % 7)), Value::int((i % 5) as i64)])
            .collect();
        let mut dirty = clean.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let log = inject_errors(&mut dirty, &schema, NoiseConfig::rate(rate), &mut rng);
        for e in &log {
            dirty[e.row][e.attr] = e.original.clone();
        }
        prop_assert_eq!(dirty, clean);
    }

    /// Each cell is perturbed at most once per pass.
    #[test]
    fn at_most_one_error_per_cell(seed in 0u64..500, rate in 0.0f64..1.0) {
        let schema = Schema::new("t", vec![Attribute::categorical("A")]);
        let mut rows: Vec<Vec<Value>> =
            (0..50).map(|i| vec![Value::str(format!("v{}", i % 9))]).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let log = inject_errors(&mut rows, &schema, NoiseConfig::rate(rate), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for e in &log {
            prop_assert!(seen.insert((e.row, e.attr)));
        }
    }

    /// sample_indices returns distinct, in-range indices of the right count.
    #[test]
    fn sample_indices_properties(seed in 0u64..500, n in 1usize..200, k in 0usize..250) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sample_indices(n, k, &mut rng);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// split_with_duplicate_rate puts exactly the requested fraction inside
    /// the master range.
    #[test]
    fn duplicate_rate_fraction_is_exact(
        seed in 0u64..500,
        master in 1usize..100,
        extra in 1usize..100,
        input in 1usize..200,
        d in 0.0f64..1.0,
    ) {
        let universe = master + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let picks = split_with_duplicate_rate(universe, master, input, d, &mut rng);
        prop_assert_eq!(picks.len(), input);
        let dup = picks.iter().filter(|&&i| i < master).count();
        let expected = ((input as f64) * d).round() as usize;
        prop_assert_eq!(dup, expected.min(input));
        prop_assert!(picks.iter().all(|&i| i < universe));
    }
}
