//! Loading real datasets from CSV files into a [`Scenario`].
//!
//! The synthetic generators stand in for the paper's datasets, but the
//! pipeline is dataset-agnostic: point this loader at the real Adult /
//! Covid-19 / Nursery / Location CSVs (or any pair of input + master
//! tables) and every miner in the workspace runs unchanged.

use crate::noise::NoiseConfig;
use crate::scenario::{Scenario, ScenarioConfig};
use er_rules::{SchemaMatch, Task};
use er_table::{csv, Pool, Relation};
use std::path::Path;
use std::sync::Arc;

/// Options for [`scenario_from_csv`].
#[derive(Debug, Clone)]
pub struct CsvScenarioOptions {
    /// Name for the scenario.
    pub name: String,
    /// Target attribute name in the input schema.
    pub target_input: String,
    /// Target attribute name in the master schema.
    pub target_master: String,
    /// Explicit `(input attr name, master attr name)` match pairs; empty =
    /// match by normalized name.
    pub match_pairs: Vec<(String, String)>,
    /// Support threshold `η_s` (defaults to 2.5% of the input rows, the
    /// paper's Adult ratio).
    pub support_threshold: Option<usize>,
}

impl CsvScenarioOptions {
    /// Minimal options: name-based matching, default threshold.
    pub fn new(
        name: impl Into<String>,
        target_input: impl Into<String>,
        target_master: impl Into<String>,
    ) -> Self {
        CsvScenarioOptions {
            name: name.into(),
            target_input: target_input.into(),
            target_master: target_master.into(),
            match_pairs: Vec::new(),
            support_threshold: None,
        }
    }
}

/// Build a scenario from two already-loaded relations (sharing a pool).
///
/// The input data doubles as the approximate labelled instance (§II-B3):
/// `truth_y` = the input's own `Y` column, and cells are flagged dirty when
/// `Y` is NULL. For real evaluations, overwrite `truth_y`/`dirty_y` with
/// manual labels afterwards.
pub fn scenario_from_relations(
    input: Relation,
    master: Relation,
    options: &CsvScenarioOptions,
) -> er_table::Result<Scenario> {
    // Task::new treats a pool mismatch as a caller bug and panics; here the
    // relations come from external files, so report it as a typed error.
    if !Arc::ptr_eq(input.pool(), master.pool()) {
        return Err(er_table::Error::Csv {
            line: 1,
            message: "input and master relations must share one value pool \
                      (load both through the same Pool)"
                .to_string(),
        });
    }
    let y = input.schema().attr_id(&options.target_input)?;
    let ym = master.schema().attr_id(&options.target_master)?;
    let matching = if options.match_pairs.is_empty() {
        SchemaMatch::by_name(input.schema(), master.schema())
    } else {
        let mut pairs = Vec::with_capacity(options.match_pairs.len());
        for (a, am) in &options.match_pairs {
            pairs.push((input.schema().attr_id(a)?, master.schema().attr_id(am)?));
        }
        SchemaMatch::from_pairs(input.num_attrs(), &pairs)
    };
    let rows = input.num_rows();
    let dirty_y: Vec<bool> = (0..rows).map(|r| input.is_null(r, y)).collect();
    let truth_y = input.column(y).to_vec();
    let support_threshold = options
        .support_threshold
        .unwrap_or(((rows as f64) * 0.025).round().max(5.0) as usize);
    let master_rows = master.num_rows();
    let task = Task::new(input, master, matching, (y, ym));
    Ok(Scenario {
        name: options.name.clone(),
        task,
        truth_y,
        dirty_y,
        support_threshold,
        config: ScenarioConfig {
            input_size: rows,
            master_size: master_rows,
            noise: NoiseConfig::rate(0.0),
            duplicate_rate: None,
            seed: 0,
            labelled: false,
        },
    })
}

/// Load input + master CSV files (shared pool) and build a scenario.
pub fn scenario_from_csv(
    input_path: impl AsRef<Path>,
    master_path: impl AsRef<Path>,
    options: &CsvScenarioOptions,
) -> er_table::Result<Scenario> {
    let pool = Arc::new(Pool::new());
    let input = csv::read_path(input_path, Arc::clone(&pool))?;
    let master = csv::read_path(master_path, pool)?;
    scenario_from_relations(input, master, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const INPUT: &str = "\
city,zip,plan
HZ,31200,basic
BJ,10021,premium
HZ,,basic
SZ,51800,
";
    const MASTER: &str = "\
city,zip,plan
HZ,31200,basic
BJ,10021,premium
SZ,51800,premium
";

    fn load() -> Scenario {
        let pool = Arc::new(Pool::new());
        let input = csv::read_str("input", INPUT, Arc::clone(&pool)).unwrap();
        let master = csv::read_str("master", MASTER, pool).unwrap();
        scenario_from_relations(
            input,
            master,
            &CsvScenarioOptions::new("toy", "plan", "plan"),
        )
        .unwrap()
    }

    #[test]
    fn loads_and_wires_target() {
        let s = load();
        assert_eq!(s.task.input().num_rows(), 4);
        assert_eq!(s.task.target(), (2, 2));
        assert_eq!(s.task.matching().num_pairs(), 3);
        assert_eq!(s.support_threshold, 5); // floor
    }

    #[test]
    fn null_targets_are_flagged_dirty() {
        let s = load();
        assert_eq!(s.dirty_y, vec![false, false, false, true]);
        assert_eq!(s.num_dirty(), 1);
    }

    #[test]
    fn repair_on_loaded_scenario_works() {
        let s = load();
        // city → plan, hand-authored (the miners live in sibling crates).
        let rule = er_rules::EditingRule::new(vec![(0, 0)], s.task.target(), vec![]);
        let report = er_rules::apply_rules(&s.task, &[rule]);
        // The missing plan for SZ is filled from the master.
        let sz_plan = s.task.master().code(2, 2);
        assert_eq!(report.predictions[3], Some(sz_plan));
    }

    #[test]
    fn explicit_match_pairs() {
        let pool = Arc::new(Pool::new());
        let input = csv::read_str("input", INPUT, Arc::clone(&pool)).unwrap();
        let master = csv::read_str("master", MASTER, pool).unwrap();
        let mut options = CsvScenarioOptions::new("toy", "plan", "plan");
        options.match_pairs = vec![
            ("city".to_string(), "city".to_string()),
            ("plan".to_string(), "plan".to_string()),
        ];
        let s = scenario_from_relations(input, master, &options).unwrap();
        assert_eq!(s.task.matching().num_pairs(), 2);
    }

    #[test]
    fn separate_pools_are_a_typed_error() {
        let input = csv::read_str("input", INPUT, Arc::new(Pool::new())).unwrap();
        let master = csv::read_str("master", MASTER, Arc::new(Pool::new())).unwrap();
        let r = scenario_from_relations(
            input,
            master,
            &CsvScenarioOptions::new("toy", "plan", "plan"),
        );
        assert!(matches!(r, Err(er_table::Error::Csv { .. })));
    }

    #[test]
    fn malformed_csv_headers_are_typed_errors() {
        // Duplicate header columns used to panic inside schema construction;
        // serve mode feeds this path untrusted input, so it must be an Err.
        let pool = Arc::new(Pool::new());
        let r = csv::read_str("input", "city,city,plan\nHZ,HZ,basic\n", pool);
        assert!(matches!(r, Err(er_table::Error::Csv { line: 1, .. })));
    }

    #[test]
    fn unknown_target_is_an_error() {
        let pool = Arc::new(Pool::new());
        let input = csv::read_str("input", INPUT, Arc::clone(&pool)).unwrap();
        let master = csv::read_str("master", MASTER, pool).unwrap();
        let r = scenario_from_relations(
            input,
            master,
            &CsvScenarioOptions::new("toy", "nope", "plan"),
        );
        assert!(r.is_err());
    }
}
