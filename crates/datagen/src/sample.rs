//! Master/input sampling with duplicate-rate control.
//!
//! Figure 7 of the paper varies the *duplicate rate* `d%`: the fraction of
//! input tuples whose entity also appears in the master data. Given a
//! universe of entities where the first `master_size` rows form the master
//! sample, [`split_with_duplicate_rate`] draws an input sample in which
//! `⌈d · input_size⌉` rows are (re-)drawn from the master range and the rest
//! from the remainder of the universe.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Sample `k` distinct indices from `0..n` (Fisher–Yates over a window).
/// When `k >= n`, returns a shuffled `0..n`.
pub fn sample_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k.min(n));
    idx
}

/// Pick `input_size` universe indices such that a `duplicate_rate` fraction
/// falls inside the master range `0..master_size` (with replacement across
/// draws — an entity may legitimately register twice) and the remainder is
/// drawn (with replacement) from `master_size..universe_size`.
///
/// # Panics
/// Panics if `duplicate_rate ∉ [0,1]`, `master_size == 0` with a positive
/// rate, or the non-master range is empty while the rate is below 1.
pub fn split_with_duplicate_rate(
    universe_size: usize,
    master_size: usize,
    input_size: usize,
    duplicate_rate: f64,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&duplicate_rate),
        "duplicate rate must be in [0,1]"
    );
    assert!(master_size <= universe_size);
    let dup = ((input_size as f64) * duplicate_rate).round() as usize;
    let dup = dup.min(input_size);
    let fresh = input_size - dup;
    if dup > 0 {
        assert!(
            master_size > 0,
            "cannot draw duplicates from an empty master"
        );
    }
    if fresh > 0 {
        assert!(
            universe_size > master_size,
            "no non-master entities to draw from"
        );
    }
    let mut out = Vec::with_capacity(input_size);
    for _ in 0..dup {
        out.push(rng.gen_range(0..master_size));
    }
    for _ in 0..fresh {
        out.push(rng.gen_range(master_size..universe_size));
    }
    out.shuffle(rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_indices(100, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_caps_at_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_indices(5, 50, &mut rng);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn duplicate_rate_zero_avoids_master() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = split_with_duplicate_rate(1000, 200, 300, 0.0, &mut rng);
        assert_eq!(s.len(), 300);
        assert!(s.iter().all(|&i| i >= 200));
    }

    #[test]
    fn duplicate_rate_one_stays_in_master() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = split_with_duplicate_rate(1000, 200, 300, 1.0, &mut rng);
        assert!(s.iter().all(|&i| i < 200));
    }

    #[test]
    fn duplicate_rate_half_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = split_with_duplicate_rate(10_000, 1000, 2000, 0.5, &mut rng);
        let in_master = s.iter().filter(|&&i| i < 1000).count();
        assert_eq!(in_master, 1000);
    }

    #[test]
    #[should_panic(expected = "duplicate rate")]
    fn invalid_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        split_with_duplicate_rate(10, 5, 5, 1.5, &mut rng);
    }
}
