//! BART-style error injection.
//!
//! Following the error-generation methodology of Arocena et al. (BART,
//! VLDB'15) used by the paper, errors are injected cell-by-cell at a
//! configurable rate, drawing the error kind from a weighted mix of:
//!
//! * **Typo** — a small string edit (adjacent-character swap, character
//!   replacement, or deletion), producing out-of-domain values;
//! * **Substitute** — replacement with another value of the same attribute's
//!   active domain, producing in-domain but wrong values;
//! * **Missing** — the cell becomes NULL.
//!
//! Every injected error records the original value so evaluation has exact
//! per-cell ground truth.

use er_table::{Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;
use std::sync::Arc;

/// The class of an injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Small string edit.
    Typo,
    /// Same-domain substitution.
    Substitute,
    /// Value removed (NULL).
    Missing,
}

/// Error-injection configuration.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Per-cell probability of injecting an error.
    pub rate: f64,
    /// Relative weight of typos.
    pub typo_weight: f64,
    /// Relative weight of substitutions.
    pub substitute_weight: f64,
    /// Relative weight of missing values.
    pub missing_weight: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            rate: 0.1,
            typo_weight: 1.0,
            substitute_weight: 1.0,
            missing_weight: 1.0,
        }
    }
}

impl NoiseConfig {
    /// Uniform mix at the given rate.
    pub fn rate(rate: f64) -> Self {
        NoiseConfig {
            rate,
            ..Default::default()
        }
    }
}

/// One injected error, with the value the cell held before.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedError {
    /// Row index.
    pub row: usize,
    /// Attribute index.
    pub attr: usize,
    /// The error class applied.
    pub kind: ErrorKind,
    /// The original (clean) value.
    pub original: Value,
}

/// Inject errors into `rows` (a value matrix aligned with `schema`) in
/// place, returning the ground-truth log of every perturbed cell.
///
/// Cells that are already NULL are skipped (there is nothing to corrupt).
/// A substitution never reproduces the original value; when an attribute's
/// active domain has a single value, the substitution degrades to a typo.
pub fn inject_errors(
    rows: &mut [Vec<Value>],
    schema: &Schema,
    config: NoiseConfig,
    rng: &mut StdRng,
) -> Vec<InjectedError> {
    assert!(
        (0.0..=1.0).contains(&config.rate),
        "noise rate must be in [0,1]"
    );
    if rows.is_empty() || config.rate == 0.0 {
        return Vec::new();
    }
    // Active domain per attribute, for substitutions.
    let arity = schema.arity();
    let mut domains: Vec<Vec<Value>> = vec![Vec::new(); arity];
    for (a, domain) in domains.iter_mut().enumerate() {
        let mut seen = HashSet::new();
        for row in rows.iter() {
            if !row[a].is_null() && seen.insert(row[a].clone()) {
                domain.push(row[a].clone());
            }
        }
    }

    let total_weight = config.typo_weight + config.substitute_weight + config.missing_weight;
    assert!(
        total_weight > 0.0,
        "at least one error kind must have weight"
    );
    let mut log = Vec::new();
    for (row_idx, row) in rows.iter_mut().enumerate() {
        for attr in 0..arity {
            if row[attr].is_null() || !rng.gen_bool(config.rate) {
                continue;
            }
            let original = row[attr].clone();
            let mut kind = pick_kind(config, total_weight, rng);
            if kind == ErrorKind::Substitute && domains[attr].len() < 2 {
                kind = ErrorKind::Typo;
            }
            let corrupted = match kind {
                ErrorKind::Missing => Value::Null,
                ErrorKind::Substitute => substitute(&original, &domains[attr], rng),
                ErrorKind::Typo => typo(&original, rng),
            };
            row[attr] = corrupted;
            log.push(InjectedError {
                row: row_idx,
                attr,
                kind,
                original,
            });
        }
    }
    log
}

fn pick_kind(config: NoiseConfig, total: f64, rng: &mut StdRng) -> ErrorKind {
    let x = rng.gen_range(0.0..total);
    if x < config.typo_weight {
        ErrorKind::Typo
    } else if x < config.typo_weight + config.substitute_weight {
        ErrorKind::Substitute
    } else {
        ErrorKind::Missing
    }
}

// Invariant: callers pass a domain of at least 2 values, so `choose` on it
// always yields Some.
#[allow(clippy::expect_used)]
fn substitute(original: &Value, domain: &[Value], rng: &mut StdRng) -> Value {
    debug_assert!(domain.len() >= 2);
    loop {
        let candidate = domain.choose(rng).expect("non-empty domain");
        if candidate != original {
            return candidate.clone();
        }
    }
}

/// Apply a small edit. Strings get a character-level edit; numbers get an
/// off-by-a-bit perturbation (a "fat-finger" digit error).
// Invariant: `choose` runs on a non-empty literal array and cannot fail.
#[allow(clippy::expect_used)]
fn typo(original: &Value, rng: &mut StdRng) -> Value {
    match original {
        Value::Str(s) => Value::Str(Arc::from(string_typo(s, rng).as_str())),
        Value::Int(v) => {
            let delta = *[1i64, -1, 10, -10].choose(rng).expect("non-empty");
            Value::Int(v.wrapping_add(delta))
        }
        Value::Float(v) => Value::Float(v + if rng.gen_bool(0.5) { 1.0 } else { -1.0 }),
        Value::Null => Value::Null,
    }
}

fn string_typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "?".to_string();
    }
    match rng.gen_range(0..3u8) {
        // Swap two adjacent distinct characters (swapping equal characters
        // would leave the string unchanged and break the error log's
        // guarantee that every recorded cell actually changed).
        0 if chars.windows(2).any(|w| w[0] != w[1]) => {
            let mut out = chars.clone();
            loop {
                let i = rng.gen_range(0..chars.len() - 1);
                if out[i] != out[i + 1] {
                    out.swap(i, i + 1);
                    break;
                }
            }
            out.into_iter().collect()
        }
        // Replace one character with a different one.
        1 => {
            let i = rng.gen_range(0..chars.len());
            let mut out = chars.clone();
            let replacement = loop {
                let c = (b'a' + rng.gen_range(0..26u8)) as char;
                if c != out[i] {
                    break c;
                }
            };
            out[i] = replacement;
            out.into_iter().collect()
        }
        // Delete one character (or duplicate, for single-char strings).
        _ => {
            if chars.len() == 1 {
                let c = chars[0];
                format!("{c}{c}")
            } else {
                let i = rng.gen_range(0..chars.len());
                let mut out = chars.clone();
                out.remove(i);
                out.into_iter().collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::Attribute;
    use rand::SeedableRng;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![Attribute::categorical("A"), Attribute::categorical("B")],
        )
    }

    fn rows(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::str(format!("alpha{}", i % 5)),
                    Value::str(format!("beta{}", i % 3)),
                ]
            })
            .collect()
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut r = rows(100);
        let before = r.clone();
        let mut rng = StdRng::seed_from_u64(1);
        let log = inject_errors(&mut r, &schema(), NoiseConfig::rate(0.0), &mut rng);
        assert!(log.is_empty());
        assert_eq!(r, before);
    }

    #[test]
    fn rate_roughly_respected() {
        let mut r = rows(2000);
        let mut rng = StdRng::seed_from_u64(2);
        let log = inject_errors(&mut r, &schema(), NoiseConfig::rate(0.1), &mut rng);
        let cells = 2000 * 2;
        let observed = log.len() as f64 / cells as f64;
        assert!((observed - 0.1).abs() < 0.02, "observed rate {observed}");
    }

    #[test]
    fn log_records_original_values() {
        let mut r = rows(500);
        let before = r.clone();
        let mut rng = StdRng::seed_from_u64(3);
        let log = inject_errors(&mut r, &schema(), NoiseConfig::rate(0.2), &mut rng);
        assert!(!log.is_empty());
        for e in &log {
            assert_eq!(e.original, before[e.row][e.attr]);
            // The cell changed (typo/substitute/missing all modify it).
            assert_ne!(r[e.row][e.attr], e.original);
        }
    }

    #[test]
    fn substitutions_stay_in_domain() {
        let mut r = rows(500);
        let domain: HashSet<Value> = r.iter().map(|row| row[0].clone()).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = NoiseConfig {
            rate: 0.3,
            typo_weight: 0.0,
            substitute_weight: 1.0,
            missing_weight: 0.0,
        };
        let log = inject_errors(&mut r, &schema(), cfg, &mut rng);
        for e in log.iter().filter(|e| e.attr == 0) {
            assert_eq!(e.kind, ErrorKind::Substitute);
            assert!(
                domain.contains(&r[e.row][0]),
                "{:?} left the domain",
                r[e.row][0]
            );
        }
    }

    #[test]
    fn missing_sets_null() {
        let mut r = rows(200);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = NoiseConfig {
            rate: 0.3,
            typo_weight: 0.0,
            substitute_weight: 0.0,
            missing_weight: 1.0,
        };
        let log = inject_errors(&mut r, &schema(), cfg, &mut rng);
        assert!(!log.is_empty());
        for e in &log {
            assert!(r[e.row][e.attr].is_null());
        }
    }

    #[test]
    fn null_cells_are_skipped() {
        let mut r = vec![vec![Value::Null, Value::Null]; 50];
        let mut rng = StdRng::seed_from_u64(6);
        let log = inject_errors(&mut r, &schema(), NoiseConfig::rate(1.0), &mut rng);
        assert!(log.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut r = rows(300);
            let mut rng = StdRng::seed_from_u64(9);
            let log = inject_errors(&mut r, &schema(), NoiseConfig::rate(0.15), &mut rng);
            (r, log.len())
        };
        let (r1, n1) = run();
        let (r2, n2) = run();
        assert_eq!(n1, n2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn integer_typos_perturb_numerically() {
        let schema = Schema::new("t", vec![Attribute::categorical("N")]);
        let mut r: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::int(i)]).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = NoiseConfig {
            rate: 0.5,
            typo_weight: 1.0,
            substitute_weight: 0.0,
            missing_weight: 0.0,
        };
        let log = inject_errors(&mut r, &schema, cfg, &mut rng);
        for e in &log {
            let orig = e.original.as_f64().unwrap();
            let new = r[e.row][0].as_f64().unwrap();
            assert!((orig - new).abs() <= 10.0);
        }
    }
}
