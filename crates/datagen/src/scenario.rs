//! Scenario assembly: universe → (master, noisy input, ground truth, task).

use crate::noise::{inject_errors, NoiseConfig};
use crate::sample::split_with_duplicate_rate;
use er_rules::{SchemaMatch, Task};
use er_table::{Code, Pool, RelationBuilder, Schema, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Sizing/noise/seed knobs common to all dataset generators.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Number of input tuples (`|D|`).
    pub input_size: usize,
    /// Number of master tuples (`|D_m|`).
    pub master_size: usize,
    /// Error injection applied to the input relation.
    pub noise: NoiseConfig,
    /// Fraction of input tuples whose entity also exists in the master data
    /// (Fig. 7's `d%`). `None` samples the input uniformly from the whole
    /// universe, giving the natural overlap of independent samples.
    pub duplicate_rate: Option<f64>,
    /// RNG seed; the same seed reproduces the same world bit-for-bit.
    pub seed: u64,
    /// When true the task's Quality labels are the ground truth (the
    /// Location setting: errors were manually labelled). When false the
    /// input data doubles as the approximate labelled instance (§II-B3).
    pub labelled: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            input_size: 1000,
            master_size: 500,
            noise: NoiseConfig::default(),
            duplicate_rate: None,
            seed: 7,
            labelled: false,
        }
    }
}

/// A fully-assembled experiment scenario: the mining [`Task`] plus the
/// evaluation-only ground truth that the miners must never see.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Dataset name (e.g. `"adult"`).
    pub name: String,
    /// The mining task handed to the miners.
    pub task: Task,
    /// Ground-truth `Y` code per input row (evaluation only).
    pub truth_y: Vec<Code>,
    /// Whether each input row's `Y` cell is erroneous/missing.
    pub dirty_y: Vec<bool>,
    /// Default support threshold `η_s` for this dataset, scaled to the
    /// configured input size from the paper's defaults.
    pub support_threshold: usize,
    /// The configuration the scenario was built with.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Evaluate a repair report against this scenario's ground truth with
    /// the paper's weighted precision/recall/F-measure.
    pub fn evaluate(&self, report: &er_rules::RepairReport) -> er_rules::WeightedPrf {
        er_rules::evaluate_repairs(&self.truth_y, &self.dirty_y, &report.predictions)
    }

    /// Number of dirty `Y` cells (cells that need repair).
    pub fn num_dirty(&self) -> usize {
        self.dirty_y.iter().filter(|&&d| d).count()
    }

    /// A version of this scenario restricted to the first `n` input rows.
    ///
    /// Input rows are i.i.d. samples, so a prefix is itself a uniform
    /// sample; the derived scenario shares the value pool, which is what
    /// lets RLMiner-ft reuse its encoder across the incremental versions
    /// (Figures 10–11). The support threshold scales proportionally.
    ///
    /// # Panics
    /// Panics if `n` exceeds the current input size or is zero.
    pub fn with_input_prefix(&self, n: usize) -> Scenario {
        let rows = self.task.input().num_rows();
        assert!(
            n > 0 && n <= rows,
            "prefix {n} out of range (input has {rows} rows)"
        );
        let keep: Vec<usize> = (0..n).collect();
        let input = self.task.input().gather(&keep);
        let labels = self.task.labels()[..n].to_vec();
        let task = Task::with_labels(
            input,
            self.task.master().clone(),
            self.task.matching().clone(),
            self.task.target(),
            labels,
        );
        Scenario {
            name: self.name.clone(),
            task,
            truth_y: self.truth_y[..n].to_vec(),
            dirty_y: self.dirty_y[..n].to_vec(),
            support_threshold: ((self.support_threshold as f64 * n as f64 / rows as f64).round()
                as usize)
                .max(5),
            config: ScenarioConfig {
                input_size: n,
                ..self.config
            },
        }
    }

    /// A version of this scenario restricted to the first `n` master rows
    /// (the master-growth increments of Figure 11).
    ///
    /// # Panics
    /// Panics if `n` exceeds the current master size or is zero.
    pub fn with_master_prefix(&self, n: usize) -> Scenario {
        let rows = self.task.master().num_rows();
        assert!(
            n > 0 && n <= rows,
            "prefix {n} out of range (master has {rows} rows)"
        );
        let keep: Vec<usize> = (0..n).collect();
        let master = self.task.master().gather(&keep);
        let task = Task::with_labels(
            self.task.input().clone(),
            master,
            self.task.matching().clone(),
            self.task.target(),
            self.task.labels().to_vec(),
        );
        Scenario {
            name: self.name.clone(),
            task,
            truth_y: self.truth_y.clone(),
            dirty_y: self.dirty_y.clone(),
            support_threshold: self.support_threshold,
            config: ScenarioConfig {
                master_size: n,
                ..self.config
            },
        }
    }
}

/// Everything a dataset generator must provide to [`assemble`].
/// Row predicate deciding master-sample eligibility (see
/// [`UniverseSpec::master_eligible`]).
pub type RowFilter<'a> = Box<dyn Fn(&[Value]) -> bool + 'a>;

pub struct UniverseSpec<'a> {
    /// Dataset name.
    pub name: &'a str,
    /// Clean full-entity rows. Rows eligible for the master sample (see
    /// `master_eligible`) must sort first if a filter is used — [`assemble`]
    /// enforces this by partitioning.
    pub universe: Vec<Vec<Value>>,
    /// Universe attribute list (names + types).
    pub universe_schema: Arc<Schema>,
    /// Universe attribute indices projected into the input relation.
    pub input_attrs: Vec<usize>,
    /// Universe attribute indices projected into the master relation.
    pub master_attrs: Vec<usize>,
    /// The `Y` attribute, in universe coordinates. Must appear in both
    /// projections.
    pub y_universe: usize,
    /// Optional predicate restricting which universe rows may enter the
    /// master sample (e.g. Covid-19 keeps only `state = released`).
    pub master_eligible: Option<RowFilter<'a>>,
    /// Paper-default `(η_s, input size)` pair used to scale the support
    /// threshold to the configured input size.
    pub paper_support: (usize, usize),
}

/// Assemble a [`Scenario`] from a universe of clean entities.
///
/// The pipeline mirrors §V-A1: the master sample is clean; the input sample
/// is drawn (with the configured duplicate rate), projected to the input
/// schema, and then corrupted by [`inject_errors`]; schema matching is by
/// (normalized) attribute name.
// Invariant: the expects below fire only on an internally inconsistent
// UniverseSpec (rows not matching the universe schema, or Y missing from a
// projection) — a bug in a dataset recipe, not a runtime condition.
#[allow(clippy::expect_used)]
pub fn assemble(spec: UniverseSpec<'_>, config: ScenarioConfig, rng: &mut StdRng) -> Scenario {
    let UniverseSpec {
        name,
        mut universe,
        universe_schema,
        input_attrs,
        master_attrs,
        y_universe,
        master_eligible,
        paper_support,
    } = spec;

    // Partition master-eligible rows to the front so the master sample is a
    // prefix (what the duplicate-rate sampler assumes).
    if let Some(pred) = &master_eligible {
        universe.sort_by_key(|row| !pred(row));
        let eligible = universe.iter().take_while(|r| pred(r)).count();
        assert!(
            eligible >= config.master_size,
            "{name}: only {eligible} master-eligible rows for master_size {}",
            config.master_size
        );
    }
    assert!(
        universe.len() > config.master_size,
        "{name}: universe must exceed the master sample"
    );

    let pool = Arc::new(Pool::new());

    // Master relation: clean prefix rows, projected.
    let master_schema = Arc::new(project_schema(&universe_schema, &master_attrs, "master"));
    let mut mb = RelationBuilder::new(Arc::clone(&master_schema), Arc::clone(&pool));
    for row in universe.iter().take(config.master_size) {
        mb.push_row(master_attrs.iter().map(|&a| row[a].clone()).collect())
            .expect("clean master row");
    }
    let master = mb.finish();

    // Input sample indices.
    let indices = match config.duplicate_rate {
        Some(d) => split_with_duplicate_rate(
            universe.len(),
            config.master_size,
            config.input_size,
            d,
            rng,
        ),
        None => (0..config.input_size)
            .map(|_| rng.gen_range(0..universe.len()))
            .collect(),
    };

    // Clean input rows + ground truth, then corruption.
    let input_schema = Arc::new(project_schema(&universe_schema, &input_attrs, "input"));
    let y_input = input_attrs
        .iter()
        .position(|&a| a == y_universe)
        .expect("Y must be projected into the input schema");
    let mut input_rows: Vec<Vec<Value>> = indices
        .iter()
        .map(|&i| {
            input_attrs
                .iter()
                .map(|&a| universe[i][a].clone())
                .collect()
        })
        .collect();
    let truth_values: Vec<Value> = indices
        .iter()
        .map(|&i| universe[i][y_universe].clone())
        .collect();
    let errors = inject_errors(&mut input_rows, &input_schema, config.noise, rng);
    let mut dirty_y = vec![false; input_rows.len()];
    for e in &errors {
        if e.attr == y_input {
            dirty_y[e.row] = true;
        }
    }

    let mut ib = RelationBuilder::new(Arc::clone(&input_schema), Arc::clone(&pool));
    for row in input_rows {
        ib.push_row(row).expect("input row");
    }
    let input = ib.finish();
    let truth_y: Vec<Code> = truth_values.into_iter().map(|v| pool.intern(v)).collect();

    let matching = SchemaMatch::by_name(&input_schema, &master_schema);
    let ym = master_attrs
        .iter()
        .position(|&a| a == y_universe)
        .expect("Y must be projected into the master schema");

    let labels = if config.labelled {
        truth_y.clone()
    } else {
        input.column(y_input).to_vec()
    };
    let task = Task::with_labels(input, master, matching, (y_input, ym), labels);

    let (paper_eta, paper_input) = paper_support;
    let support_threshold = ((paper_eta as f64 * config.input_size as f64 / paper_input as f64)
        .round() as usize)
        .max(5);

    Scenario {
        name: name.to_string(),
        task,
        truth_y,
        dirty_y,
        support_threshold,
        config,
    }
}

fn project_schema(universe: &Schema, attrs: &[usize], name: &str) -> Schema {
    Schema::new(
        name,
        attrs.iter().map(|&a| universe.attr(a).clone()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_table::Attribute;
    use rand::SeedableRng;

    fn toy_spec() -> UniverseSpec<'static> {
        let schema = Arc::new(Schema::new(
            "universe",
            vec![
                Attribute::categorical("City"),
                Attribute::categorical("State"),
                Attribute::categorical("Case"),
            ],
        ));
        let mut universe = Vec::new();
        for i in 0..200 {
            let city = format!("city{}", i % 10);
            let state = if i % 2 == 0 { "released" } else { "isolated" };
            let case = format!("case{}", i % 10 % 4);
            universe.push(vec![Value::str(city), Value::str(state), Value::str(case)]);
        }
        UniverseSpec {
            name: "toy",
            universe,
            universe_schema: schema,
            input_attrs: vec![0, 1, 2],
            master_attrs: vec![0, 2],
            y_universe: 2,
            master_eligible: Some(Box::new(|row: &[Value]| row[1] == Value::str("released"))),
            paper_support: (100, 2500),
        }
    }

    #[test]
    fn assemble_produces_consistent_scenario() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = ScenarioConfig {
            input_size: 120,
            master_size: 50,
            noise: NoiseConfig::rate(0.1),
            ..Default::default()
        };
        let s = assemble(toy_spec(), config, &mut rng);
        assert_eq!(s.task.input().num_rows(), 120);
        assert_eq!(s.task.master().num_rows(), 50);
        assert_eq!(s.truth_y.len(), 120);
        assert_eq!(s.dirty_y.len(), 120);
        // Master rows all satisfy the eligibility filter — and the master
        // schema (City, Case) doesn't include State, so check via universe
        // partitioning: support threshold scaled from (100, 2500).
        assert_eq!(
            s.support_threshold,
            (100.0_f64 * 120.0 / 2500.0).round().max(5.0) as usize
        );
        // Some noise was injected somewhere.
        assert!(s.num_dirty() < 120);
    }

    #[test]
    fn dirty_y_matches_truth_mismatch_for_missing() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = ScenarioConfig {
            input_size: 300,
            master_size: 50,
            noise: NoiseConfig {
                rate: 0.3,
                typo_weight: 0.0,
                substitute_weight: 0.0,
                missing_weight: 1.0,
            },
            ..Default::default()
        };
        let s = assemble(toy_spec(), config, &mut rng);
        let y = s.task.target().0;
        for row in 0..300 {
            if s.dirty_y[row] {
                assert!(s.task.input().is_null(row, y));
            } else {
                assert_eq!(s.task.input().code(row, y), s.truth_y[row]);
            }
        }
        assert!(s.num_dirty() > 0);
    }

    #[test]
    fn labelled_mode_uses_truth_labels() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = ScenarioConfig {
            input_size: 100,
            master_size: 40,
            labelled: true,
            noise: NoiseConfig::rate(0.2),
            ..Default::default()
        };
        let s = assemble(toy_spec(), config, &mut rng);
        assert_eq!(s.task.labels(), s.truth_y.as_slice());
    }

    #[test]
    fn unlabelled_mode_uses_input_as_labels() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = ScenarioConfig {
            input_size: 100,
            master_size: 40,
            labelled: false,
            noise: NoiseConfig::rate(0.2),
            ..Default::default()
        };
        let s = assemble(toy_spec(), config, &mut rng);
        let y = s.task.target().0;
        assert_eq!(s.task.labels(), s.task.input().column(y));
    }

    #[test]
    fn duplicate_rate_one_makes_input_master_entities() {
        let mut rng = StdRng::seed_from_u64(7);
        let config = ScenarioConfig {
            input_size: 80,
            master_size: 60,
            duplicate_rate: Some(1.0),
            noise: NoiseConfig::rate(0.0),
            ..Default::default()
        };
        let s = assemble(toy_spec(), config, &mut rng);
        // With no noise and 100% duplicates, every input (City, Case) pair
        // exists in the master relation.
        let master = s.task.master();
        let idx = er_table::KeyIndex::build(master, &[0, 1]);
        let input = s.task.input();
        for row in 0..input.num_rows() {
            let hits = idx.probe(input, row, &[0, 2]).expect("no NULLs");
            assert!(!hits.is_empty(), "input row {row} missing from master");
        }
    }

    #[test]
    #[should_panic(expected = "master-eligible")]
    fn insufficient_eligible_rows_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let config = ScenarioConfig {
            input_size: 10,
            master_size: 150,
            ..Default::default()
        };
        assemble(toy_spec(), config, &mut rng);
    }
}
