//! Seeded building blocks for the synthetic datasets.

use er_table::Value;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A categorical vocabulary with a Zipf-like sampling skew (real attribute
/// value frequencies are heavy-tailed, and support-based pruning behaves very
/// differently on skewed vs. uniform domains).
#[derive(Debug, Clone)]
pub struct Vocab {
    values: Vec<Arc<str>>,
    weights: WeightedIndex<f64>,
}

impl Vocab {
    /// Vocabulary from explicit words, Zipf(1.0)-weighted in listing order.
    pub fn new(words: &[&str]) -> Self {
        Self::from_values(words.iter().map(|w| Arc::from(*w)).collect())
    }

    /// Vocabulary of `n` generated values `"{prefix}{i}"`.
    pub fn generated(prefix: &str, n: usize) -> Self {
        Self::from_values(
            (0..n)
                .map(|i| Arc::from(format!("{prefix}{i:03}").as_str()))
                .collect(),
        )
    }

    // Invariant: the Zipf weights 1/r are finite and positive for any
    // non-empty vocabulary, which `WeightedIndex::new` always accepts.
    #[allow(clippy::expect_used)]
    fn from_values(values: Vec<Arc<str>>) -> Self {
        assert!(!values.is_empty(), "vocabulary must be non-empty");
        let weights =
            WeightedIndex::new((1..=values.len()).map(|r| 1.0 / r as f64)).expect("valid weights");
        Vocab { values, weights }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample a value index with the Zipf skew.
    pub fn sample_index(&self, rng: &mut StdRng) -> usize {
        self.weights.sample(rng)
    }

    /// Sample a value with the Zipf skew.
    pub fn sample(&self, rng: &mut StdRng) -> Value {
        Value::Str(Arc::clone(&self.values[self.sample_index(rng)]))
    }

    /// The value at `index`.
    pub fn value(&self, index: usize) -> Value {
        Value::Str(Arc::clone(&self.values[index]))
    }
}

/// A deterministic mapping from determinant-value index tuples to a target
/// value index — the planted "true dependency" a dataset hides for the
/// miners to discover. Entries are created lazily with the dataset's RNG, so
/// the same seed always plants the same world.
#[derive(Debug, Default)]
pub struct MappingTable {
    map: HashMap<Vec<usize>, usize>,
}

impl MappingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Target index for `key`, drawing a fresh uniform target in
    /// `0..target_card` the first time `key` is seen.
    pub fn get(&mut self, key: &[usize], target_card: usize, rng: &mut StdRng) -> usize {
        if let Some(&v) = self.map.get(key) {
            return v;
        }
        let v = rng.gen_range(0..target_card);
        self.map.insert(key.to_vec(), v);
        v
    }

    /// Number of distinct keys materialized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no key has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vocab_samples_within_range() {
        let v = Vocab::generated("c", 10);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(v.sample_index(&mut rng) < 10);
        }
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn vocab_skew_prefers_early_values() {
        let v = Vocab::generated("c", 20);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 20];
        for _ in 0..10_000 {
            counts[v.sample_index(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] * 2, "zipf skew expected: {counts:?}");
    }

    #[test]
    fn vocab_values_are_distinct() {
        let v = Vocab::generated("p", 5);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            assert!(seen.insert(v.value(i).to_string()));
        }
    }

    #[test]
    fn mapping_table_is_deterministic_per_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut t = MappingTable::new();
            (0..50)
                .map(|i| t.get(&[i % 7, i % 3], 5, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn mapping_table_is_functional() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = MappingTable::new();
        let a = t.get(&[1, 2], 10, &mut rng);
        let b = t.get(&[1, 2], 10, &mut rng);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }
}
