//! The four dataset generators mirroring the paper's evaluation datasets
//! (Table I), plus the Figure-1 running example.
//!
//! Each generator plants a ground-truth dependency structure chosen so the
//! *shape* of the rules the miners should discover matches what the paper
//! reports in Table II:
//!
//! | Dataset  | Planted structure | Expected rule shape |
//! |----------|-------------------|---------------------|
//! | Adult    | `income = g₁(occupation)` when `workclass = Private`, else `g₂(workclass, occupation)` | short LHS + 1 pattern condition |
//! | Covid-19 | `infection_case = f(city, confirmed_date)` for `state = released` rows (the only ones in master), a different map otherwise | LHS ≈ 2 + `state` pattern (the paper's φ₁) |
//! | Nursery  | `finance = f(parents, has_nurs, form, children, housing)` over tiny domains | long LHS, no pattern (EnuMiner's 5.62 average) |
//! | Location | `postcode = f(county)`, `area_code = g(county)` | LHS ≈ 1, clean FD (the paper's φ₂) |

use crate::noise::NoiseConfig;
use crate::scenario::{assemble, Scenario, ScenarioConfig, UniverseSpec};
use crate::synth::{MappingTable, Vocab};
use er_rules::{SchemaMatch, Task};
use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The four evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// UCI Adult analog (Table I row 1): 10/9 attributes, Y = income.
    Adult,
    /// Kaggle Covid-19 (South Korea) analog: 7/8 attributes,
    /// Y = infection_case, master restricted to released cases.
    Covid,
    /// UCI Nursery analog: 9/9 attributes with tiny domains, Y = finance.
    Nursery,
    /// Starbucks Location analog: 9/5 attributes, Y = postcode, input
    /// already dirty with labelled errors.
    Location,
}

impl DatasetKind {
    /// All datasets in Table I order.
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Adult,
            DatasetKind::Covid,
            DatasetKind::Nursery,
            DatasetKind::Location,
        ]
    }

    /// Dataset name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Adult => "adult",
            DatasetKind::Covid => "covid",
            DatasetKind::Nursery => "nursery",
            DatasetKind::Location => "location",
        }
    }

    /// The paper's sizes and defaults for this dataset (Table I / §V-A1).
    pub fn paper_config(self) -> ScenarioConfig {
        let base = ScenarioConfig::default();
        match self {
            DatasetKind::Adult => ScenarioConfig {
                input_size: 40_000,
                master_size: 5_000,
                noise: NoiseConfig::rate(0.1),
                ..base
            },
            DatasetKind::Covid => ScenarioConfig {
                input_size: 2_500,
                master_size: 1_824,
                noise: NoiseConfig::rate(0.1),
                ..base
            },
            DatasetKind::Nursery => ScenarioConfig {
                input_size: 10_000,
                master_size: 2_980,
                noise: NoiseConfig::rate(0.1),
                ..base
            },
            DatasetKind::Location => ScenarioConfig {
                input_size: 2_559,
                master_size: 3_430,
                // Location is "already dirty": ~15% missing + ~5% real
                // errors, with manually-labelled truth (§V-A1).
                noise: NoiseConfig {
                    rate: 0.196,
                    typo_weight: 0.5,
                    substitute_weight: 0.5,
                    missing_weight: 2.0,
                },
                labelled: true,
                ..base
            },
        }
    }

    /// A laptop-scale configuration (~1/8 of the paper sizes) that keeps the
    /// relative behaviour of the miners intact.
    pub fn small_config(self) -> ScenarioConfig {
        let paper = self.paper_config();
        ScenarioConfig {
            input_size: (paper.input_size / 8).max(300),
            master_size: (paper.master_size / 8).max(150),
            ..paper
        }
    }

    /// Build the scenario.
    pub fn build(self, config: ScenarioConfig) -> Scenario {
        match self {
            DatasetKind::Adult => adult(config),
            DatasetKind::Covid => covid(config),
            DatasetKind::Nursery => nursery(config),
            DatasetKind::Location => location(config),
        }
    }
}

fn universe_size(config: &ScenarioConfig) -> usize {
    ((config.input_size + config.master_size) as f64 * 1.15) as usize + 64
}

/// Adult analog. Universe (11 attrs): age, workclass, education,
/// marital_status, occupation, relationship, race, sex, hours, country,
/// income. Input keeps 10 (drops country), master keeps 9 (drops race and
/// sex), so the match covers 8 attribute pairs and the input has two
/// pattern-only attributes — exactly the asymmetry editing rules exploit.
pub fn adult(config: ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xAD01);
    let workclass = Vocab::new(&[
        "Private",
        "Self-emp",
        "Self-emp-inc",
        "Federal-gov",
        "Local-gov",
        "State-gov",
        "Without-pay",
        "Never-worked",
    ]);
    let education = Vocab::generated("edu", 16);
    let marital = Vocab::new(&[
        "Married",
        "Never-married",
        "Divorced",
        "Separated",
        "Widowed",
        "Spouse-absent",
        "AF-spouse",
    ]);
    let occupation = Vocab::generated("occ", 14);
    let relationship = Vocab::new(&[
        "Husband",
        "Wife",
        "Own-child",
        "Not-in-family",
        "Other-relative",
        "Unmarried",
    ]);
    let race = Vocab::new(&["White", "Black", "Asian", "Amer-Indian", "Other"]);
    let sex = Vocab::new(&["Male", "Female"]);
    let country = Vocab::generated("country", 30);
    let income = Vocab::new(&["<=30K", "30-50K", "50-80K", ">80K"]);

    let mut private_map = MappingTable::new();
    let mut other_map = MappingTable::new();
    let n = universe_size(&config);
    let mut universe = Vec::with_capacity(n);
    for _ in 0..n {
        let wc = workclass.sample_index(&mut rng);
        let occ = occupation.sample_index(&mut rng);
        // Planted structure: within the dominant workclass "Private" (Zipf
        // head), occupation alone determines income; elsewhere the pair
        // (workclass, occupation) does.
        let mut inc = if wc == 0 {
            private_map.get(&[occ], income.len(), &mut rng)
        } else {
            other_map.get(&[wc, occ], income.len(), &mut rng)
        };
        // Real dependencies are approximate: a small exception rate keeps
        // exact-FD miners (CTANE with confidence 1.0) from finding one
        // global dependency, exactly as on the real datasets.
        if rng.gen_bool(0.04) {
            inc = (inc + 1 + rng.gen_range(0..income.len() - 1)) % income.len();
        }
        universe.push(vec![
            Value::int(rng.gen_range(17..90)),
            workclass.value(wc),
            education.sample(&mut rng),
            marital.sample(&mut rng),
            occupation.value(occ),
            relationship.sample(&mut rng),
            race.sample(&mut rng),
            sex.sample(&mut rng),
            Value::int(rng.gen_range(1..99)),
            country.sample(&mut rng),
            income.value(inc),
        ]);
    }
    let schema = Arc::new(Schema::new(
        "adult_universe",
        vec![
            Attribute::continuous("age"),
            Attribute::categorical("workclass"),
            Attribute::categorical("education"),
            Attribute::categorical("marital_status"),
            Attribute::categorical("occupation"),
            Attribute::categorical("relationship"),
            Attribute::categorical("race"),
            Attribute::categorical("sex"),
            Attribute::continuous("hours"),
            Attribute::categorical("country"),
            Attribute::categorical("income"),
        ],
    ));
    assemble(
        UniverseSpec {
            name: "adult",
            universe,
            universe_schema: schema,
            input_attrs: vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 10],
            master_attrs: vec![0, 1, 2, 3, 4, 5, 8, 9, 10],
            y_universe: 10,
            master_eligible: None,
            paper_support: (1000, 40_000),
        },
        config,
        &mut rng,
    )
}

/// Covid-19 analog. Universe (8 attrs): city, province, confirmed_date,
/// released_date, sex, age_range, state, infection_case. Input keeps 7
/// (drops released_date), master keeps all 8 but only `state = released`
/// rows — so the miners must discover the `state` pattern condition (the
/// paper's φ₁) to avoid wrong repairs of non-released tuples.
pub fn covid(config: ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0_71D);
    let city = Vocab::generated("city", 40);
    let province = Vocab::generated("prov", 10);
    let date = Vocab::generated("2020-", 12);
    let sex = Vocab::new(&["male", "female"]);
    let age = Vocab::new(&["0s", "10s", "20s", "30s", "40s", "50s", "60s", "70s", "80s"]);
    let state = Vocab::new(&["released", "isolated", "deceased"]);
    let case = Vocab::new(&[
        "contact with patient",
        "contact with imports",
        "overseas inflow",
        "etc",
        "Itaewon Clubs",
        "Richway",
        "Shincheonji Church",
        "gym facility",
    ]);

    let mut released_map = MappingTable::new();
    let mut other_map = MappingTable::new();
    let n = universe_size(&config).max(config.master_size * 2 + 64);
    let mut universe = Vec::with_capacity(n);
    for _ in 0..n {
        let c = city.sample_index(&mut rng);
        let d = date.sample_index(&mut rng);
        // "released" dominates so the master filter has enough rows.
        let st = if rng.gen_bool(0.62) {
            0
        } else {
            1 + rng.gen_range(0..2usize)
        };
        let mut ic = if st == 0 {
            released_map.get(&[c, d], case.len(), &mut rng)
        } else {
            other_map.get(&[c, d, st], case.len(), &mut rng)
        };
        // Approximate dependency (see the adult generator).
        if rng.gen_bool(0.04) {
            ic = (ic + 1 + rng.gen_range(0..case.len() - 1)) % case.len();
        }
        universe.push(vec![
            city.value(c),
            province.sample(&mut rng),
            date.value(d),
            date.sample(&mut rng), // released_date: uncorrelated
            sex.sample(&mut rng),
            age.sample(&mut rng),
            state.value(st),
            case.value(ic),
        ]);
    }
    let schema = Arc::new(Schema::new(
        "covid_universe",
        vec![
            Attribute::categorical("city"),
            Attribute::categorical("province"),
            Attribute::categorical("confirmed_date"),
            Attribute::categorical("released_date"),
            Attribute::categorical("sex"),
            Attribute::categorical("age_range"),
            Attribute::categorical("state"),
            Attribute::categorical("infection_case"),
        ],
    ));
    let released = Value::str("released");
    assemble(
        UniverseSpec {
            name: "covid",
            universe,
            universe_schema: schema,
            input_attrs: vec![0, 1, 2, 4, 5, 6, 7],
            master_attrs: vec![0, 1, 2, 3, 4, 5, 6, 7],
            y_universe: 7,
            master_eligible: Some(Box::new(move |row: &[Value]| row[6] == released)),
            paper_support: (100, 2_500),
        },
        config,
        &mut rng,
    )
}

/// Nursery analog: nine categorical attributes with 2–5 values each on both
/// sides (identity match). `finance` is determined only by a *five*-attribute
/// LHS, which is why enumeration-style miners return very specific rules here
/// (Table II's 5.62 average LHS for EnuMiner).
pub fn nursery(config: ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9005E);
    let parents = Vocab::new(&["usual", "pretentious", "great_pret"]);
    let has_nurs = Vocab::new(&["proper", "less_proper", "improper", "critical", "very_crit"]);
    let form = Vocab::new(&["complete", "completed", "incomplete", "foster"]);
    let children = Vocab::new(&["1", "2", "3", "more"]);
    let housing = Vocab::new(&["convenient", "less_conv", "critical"]);
    let finance = Vocab::new(&["convenient", "inconv", "stretched"]);
    let social = Vocab::new(&["nonprob", "slightly_prob", "problematic"]);
    let health = Vocab::new(&["recommended", "priority", "not_recom"]);
    let class = Vocab::new(&[
        "not_recom",
        "recommend",
        "very_recom",
        "priority",
        "spec_prior",
    ]);

    let mut fin_map = MappingTable::new();
    let n = universe_size(&config);
    let mut universe = Vec::with_capacity(n);
    for _ in 0..n {
        let p = parents.sample_index(&mut rng);
        let hn = has_nurs.sample_index(&mut rng);
        let f = form.sample_index(&mut rng);
        let ch = children.sample_index(&mut rng);
        let ho = housing.sample_index(&mut rng);
        let mut fin = fin_map.get(&[p, hn, f, ch, ho], finance.len(), &mut rng);
        // Approximate dependency (see the adult generator).
        if rng.gen_bool(0.04) {
            fin = (fin + 1 + rng.gen_range(0..finance.len() - 1)) % finance.len();
        }
        universe.push(vec![
            parents.value(p),
            has_nurs.value(hn),
            form.value(f),
            children.value(ch),
            housing.value(ho),
            finance.value(fin),
            social.sample(&mut rng),
            health.sample(&mut rng),
            class.sample(&mut rng),
        ]);
    }
    let schema = Arc::new(Schema::new(
        "nursery_universe",
        vec![
            Attribute::categorical("parents"),
            Attribute::categorical("has_nurs"),
            Attribute::categorical("form"),
            Attribute::categorical("children"),
            Attribute::categorical("housing"),
            Attribute::categorical("finance"),
            Attribute::categorical("social"),
            Attribute::categorical("health"),
            Attribute::categorical("class"),
        ],
    ));
    let all: Vec<usize> = (0..9).collect();
    assemble(
        UniverseSpec {
            name: "nursery",
            universe,
            universe_schema: schema,
            input_attrs: all.clone(),
            master_attrs: all,
            y_universe: 5,
            master_eligible: None,
            paper_support: (1000, 10_000),
        },
        config,
        &mut rng,
    )
}

/// Location analog. Input (9 attrs): brand, store_number, name, city,
/// county, area_code, postcode, longitude, latitude. Master (5 attrs): city,
/// county, area_code, postcode, province — four matched pairs, like the
/// government postcode table of §V-A1. `postcode = f(county)` and
/// `area_code = g(county)`, the clean FDs behind the paper's φ₂. The
/// `store_number` column has a near-unique domain, exercising the
/// common-prefix domain reduction.
pub fn location(config: ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x10CA7);
    let brand = Vocab::new(&["Starbucks", "Luckin", "Costa"]);
    let city = Vocab::generated("city", 60);
    let county = Vocab::generated("county", 120);
    let postcode = Vocab::generated("31", 200);
    let area_code = Vocab::generated("0", 40);
    let province = Vocab::generated("prov", 15);

    let mut post_map = MappingTable::new();
    let mut ac_map = MappingTable::new();
    let mut city_map = MappingTable::new();
    let mut prov_map = MappingTable::new();
    let n = universe_size(&config);
    let mut universe = Vec::with_capacity(n);
    for i in 0..n {
        let co = county.sample_index(&mut rng);
        let mut pc = post_map.get(&[co], postcode.len(), &mut rng);
        // The government postcode registry is nearly but not perfectly
        // functional (boundary counties span postcodes).
        if rng.gen_bool(0.015) {
            pc = (pc + 1 + rng.gen_range(0..postcode.len() - 1)) % postcode.len();
        }
        let ac = ac_map.get(&[co], area_code.len(), &mut rng);
        let ci = city_map.get(&[co], city.len(), &mut rng);
        let pr = prov_map.get(&[ci], province.len(), &mut rng);
        universe.push(vec![
            brand.sample(&mut rng),
            Value::str(format!("SN{:06}", 100_000 + i)),
            Value::str(format!("Store {} #{}", i % 500, i)),
            city.value(ci),
            county.value(co),
            area_code.value(ac),
            postcode.value(pc),
            Value::float(100.0 + (co as f64) * 0.3 + rng.gen_range(-0.1..0.1)),
            Value::float(20.0 + (co as f64) * 0.2 + rng.gen_range(-0.1..0.1)),
            province.value(pr),
        ]);
    }
    let schema = Arc::new(Schema::new(
        "location_universe",
        vec![
            Attribute::categorical("brand"),
            Attribute::categorical("store_number"),
            Attribute::categorical("name"),
            Attribute::categorical("city"),
            Attribute::categorical("county"),
            Attribute::categorical("area_code"),
            Attribute::categorical("postcode"),
            Attribute::continuous("longitude"),
            Attribute::continuous("latitude"),
            Attribute::categorical("province"),
        ],
    ));
    assemble(
        UniverseSpec {
            name: "location",
            universe,
            universe_schema: schema,
            input_attrs: vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
            master_attrs: vec![3, 4, 5, 6, 9],
            y_universe: 6,
            master_eligible: None,
            paper_support: (50, 2_559),
        },
        config,
        &mut rng,
    )
}

/// The paper's Figure 1 running example as a tiny labelled [`Scenario`]
/// (3 registration tuples, 4 national COVID-19 records). Useful for
/// documentation, quickstarts, and as an exactly-checkable fixture.
// Invariant: every row below is a literal matching the literal schema, so
// `push_row` cannot fail.
#[allow(clippy::unwrap_used)]
pub fn figure1() -> Scenario {
    let pool = Arc::new(Pool::new());
    let in_schema = Arc::new(Schema::new(
        "registration",
        vec![
            Attribute::categorical("Name"),
            Attribute::categorical("City"),
            Attribute::categorical("ZIP"),
            Attribute::categorical("AC"),
            Attribute::categorical("Phone"),
            Attribute::categorical("Sex"),
            Attribute::categorical("Case"),
            Attribute::categorical("Date"),
            Attribute::categorical("Overseas"),
        ],
    ));
    let m_schema = Arc::new(Schema::new(
        "covid_records",
        vec![
            Attribute::categorical("FN"),
            Attribute::categorical("LN"),
            Attribute::categorical("City"),
            Attribute::categorical("ZIP"),
            Attribute::categorical("AC"),
            Attribute::categorical("Phone"),
            Attribute::categorical("Sex"),
            Attribute::categorical("Case"),
            Attribute::categorical("Date"),
        ],
    ));
    let s = Value::str;
    let mut b = RelationBuilder::new(Arc::clone(&in_schema), Arc::clone(&pool));
    b.push_row(vec![
        s("Kevin"),
        s("HZ"),
        Value::Null,
        Value::Null,
        s("325-8455"),
        s("Male"),
        Value::Null,
        s("2021-12"),
        s("No"),
    ])
    .unwrap();
    b.push_row(vec![
        s("Kyrie"),
        s("BJ"),
        s("10021"),
        s("010"),
        s("358-1553"),
        Value::Null,
        s("contact with imports"),
        s("2021-11"),
        s("No"),
    ])
    .unwrap();
    b.push_row(vec![
        s("Robin"),
        s("HZ"),
        s("31200"),
        Value::Null,
        s("325-7538"),
        s("Male"),
        s("Others"),
        s("2021-12"),
        s("Yes"),
    ])
    .unwrap();
    let input = b.finish();
    let mut bm = RelationBuilder::new(Arc::clone(&m_schema), Arc::clone(&pool));
    bm.push_row(vec![
        s("Kevin"),
        s("Lees"),
        s("SZ"),
        s("51800"),
        s("755"),
        s("625-0418"),
        s("Male"),
        s("contact with imports"),
        s("2021-10"),
    ])
    .unwrap();
    bm.push_row(vec![
        s("Kyrie"),
        s("Wang"),
        s("BJ"),
        s("10021"),
        s("010"),
        s("358-1563"),
        s("Female"),
        s("contact with imports"),
        s("2021-11"),
    ])
    .unwrap();
    bm.push_row(vec![
        s("Kevin"),
        s("Sun"),
        s("HZ"),
        s("31200"),
        s("571"),
        s("325-8465"),
        s("Male"),
        s("contact with patient"),
        s("2021-12"),
    ])
    .unwrap();
    bm.push_row(vec![
        s("Susan"),
        s("Lu"),
        s("HZ"),
        s("31200"),
        s("571"),
        s("325-8931"),
        s("Female"),
        s("contact with patient"),
        s("2021-12"),
    ])
    .unwrap();
    let master = bm.finish();

    let truth_y = vec![
        pool.intern(s("contact with patient")),
        pool.intern(s("contact with imports")),
        pool.intern(s("Others")),
    ];
    let dirty_y = vec![true, false, false];
    let matching = SchemaMatch::by_name(&in_schema, &m_schema);
    let task = Task::with_labels(input, master, matching, (6, 7), truth_y.clone());
    Scenario {
        name: "figure1".to_string(),
        task,
        truth_y,
        dirty_y,
        support_threshold: 1,
        config: ScenarioConfig {
            input_size: 3,
            master_size: 4,
            noise: NoiseConfig::rate(0.0),
            duplicate_rate: None,
            seed: 0,
            labelled: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_rules::{apply_rules, Condition, EditingRule, Evaluator};

    fn tiny(kind: DatasetKind) -> Scenario {
        let paper = kind.paper_config();
        kind.build(ScenarioConfig {
            input_size: 400,
            master_size: 200,
            seed: 11,
            ..paper
        })
    }

    #[test]
    fn all_datasets_build_at_small_scale() {
        for kind in DatasetKind::all() {
            let s = tiny(kind);
            assert_eq!(s.task.input().num_rows(), 400, "{}", kind.name());
            assert_eq!(s.task.master().num_rows(), 200, "{}", kind.name());
            assert!(s.task.matching().num_pairs() > 0, "{}", kind.name());
            assert!(
                s.num_dirty() > 0,
                "{} should have dirty Y cells",
                kind.name()
            );
        }
    }

    #[test]
    fn schema_arities_match_table1() {
        let adult = tiny(DatasetKind::Adult);
        assert_eq!(adult.task.input().num_attrs(), 10);
        assert_eq!(adult.task.master().num_attrs(), 9);
        let covid = tiny(DatasetKind::Covid);
        assert_eq!(covid.task.input().num_attrs(), 7);
        assert_eq!(covid.task.master().num_attrs(), 8);
        let nursery = tiny(DatasetKind::Nursery);
        assert_eq!(nursery.task.input().num_attrs(), 9);
        assert_eq!(nursery.task.master().num_attrs(), 9);
        let location = tiny(DatasetKind::Location);
        assert_eq!(location.task.input().num_attrs(), 9);
        assert_eq!(location.task.master().num_attrs(), 5);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = tiny(DatasetKind::Covid);
        let b = tiny(DatasetKind::Covid);
        assert_eq!(a.truth_y, b.truth_y);
        assert_eq!(a.dirty_y, b.dirty_y);
        let ra = a.task.input();
        let rb = b.task.input();
        for row in 0..ra.num_rows() {
            for attr in 0..ra.num_attrs() {
                assert_eq!(ra.value(row, attr), rb.value(row, attr));
            }
        }
    }

    #[test]
    fn covid_master_is_all_released() {
        let s = tiny(DatasetKind::Covid);
        let master = s.task.master();
        let state = master.schema().attr_id("state").unwrap();
        for row in 0..master.num_rows() {
            assert_eq!(master.value(row, state), Value::str("released"));
        }
    }

    #[test]
    fn location_planted_fd_is_repairing() {
        // The planted rule: postcode determined by county in master data.
        let s = tiny(DatasetKind::Location);
        let input = s.task.input();
        let county = input.schema().attr_id("county").unwrap();
        let county_m = s.task.master().schema().attr_id("county").unwrap();
        let rule = EditingRule::new(vec![(county, county_m)], s.task.target(), vec![]);
        let report = apply_rules(&s.task, &[rule]);
        let prf = s.evaluate(&report);
        assert!(prf.precision > 0.8, "precision {}", prf.precision);
        assert!(prf.recall > 0.5, "recall {}", prf.recall);
    }

    #[test]
    fn covid_planted_rule_measures() {
        let s = tiny(DatasetKind::Covid);
        let input = s.task.input();
        let city = input.schema().attr_id("city").unwrap();
        let date = input.schema().attr_id("confirmed_date").unwrap();
        let state = input.schema().attr_id("state").unwrap();
        let mc = |n: &str| s.task.master().schema().attr_id(n).unwrap();
        let released = s
            .task
            .input()
            .pool()
            .code_of(&Value::str("released"))
            .unwrap();
        let ev = Evaluator::new(&s.task);
        let guarded = EditingRule::new(
            vec![(city, mc("city")), (date, mc("confirmed_date"))],
            s.task.target(),
            vec![Condition::eq(state, released)],
        );
        let unguarded = EditingRule::new(
            vec![(city, mc("city")), (date, mc("confirmed_date"))],
            s.task.target(),
            vec![],
        );
        let mg = ev.eval(&guarded, None);
        let mu = ev.eval(&unguarded, None);
        assert!(mg.support > 0);
        // The guard restricts to tuples whose mapping the master actually
        // stores — quality must improve.
        assert!(
            mg.quality > mu.quality,
            "guarded {} vs unguarded {}",
            mg.quality,
            mu.quality
        );
    }

    #[test]
    fn figure1_scenario_matches_paper() {
        let s = figure1();
        assert_eq!(s.task.input().num_rows(), 3);
        assert_eq!(s.task.master().num_rows(), 4);
        assert_eq!(s.num_dirty(), 1);
        // φ0 from Example 1 repairs t1 correctly.
        let input = s.task.input();
        let c = |n: &str| input.schema().attr_id(n).unwrap();
        let mcol = |n: &str| s.task.master().schema().attr_id(n).unwrap();
        let code = |v: &str| input.pool().code_of(&Value::str(v)).unwrap();
        let phi0 = EditingRule::new(
            vec![(c("City"), mcol("City")), (c("Date"), mcol("Date"))],
            s.task.target(),
            vec![
                Condition::eq(c("City"), code("HZ")),
                Condition::eq(c("Date"), code("2021-12")),
                Condition::eq(c("Overseas"), code("No")),
            ],
        );
        let report = apply_rules(&s.task, &[phi0]);
        assert_eq!(report.predictions[0], Some(code("contact with patient")));
        assert_eq!(
            report.predictions[2], None,
            "t3 must be protected by the Overseas guard"
        );
        let prf = s.evaluate(&report);
        assert_eq!(prf.precision, 1.0);
    }

    #[test]
    fn location_has_large_store_number_domain() {
        let s = tiny(DatasetKind::Location);
        let input = s.task.input();
        let sn = input.schema().attr_id("store_number").unwrap();
        // 400 draws with replacement from ~750 entities: ~310 distinct.
        assert!(
            input.domain_size(sn) > 250,
            "store_number should be near-unique"
        );
    }
}
