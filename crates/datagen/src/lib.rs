#![forbid(unsafe_code)]
//! # er-datagen — datasets, sampling, and error injection
//!
//! The paper evaluates on four datasets (Adult, Covid-19, Nursery, Location).
//! Those CSVs are not redistributable, so this crate generates seeded
//! synthetic stand-ins with the same schema shapes, domain sizes and — most
//! importantly — the same *editing-rule structure*: each generator plants
//! ground-truth dependencies of the form "`X` determines `Y` in the master
//! data, conditioned on pattern attributes of the input data", which is
//! exactly the rule family the miners must recover. Real CSVs can still be
//! loaded via `er_table::csv` and wrapped into a [`Scenario`] by hand.
//!
//! * [`synth`] — vocabularies and seeded mapping tables shared by the
//!   generators.
//! * [`noise`] — BART-style cell error injection (typos, same-domain
//!   substitutions, missing values) with per-cell ground truth.
//! * [`sample`] — master/input index sampling with duplicate-rate control
//!   (Fig. 7's `d%`).
//! * [`datasets`] — the four scenario builders plus a tiny Figure-1 fixture.

pub mod datasets;
pub mod loader;
pub mod noise;
pub mod sample;
pub mod scenario;
pub mod synth;

pub use datasets::{adult, covid, figure1, location, nursery, DatasetKind};
pub use loader::{scenario_from_csv, scenario_from_relations, CsvScenarioOptions};
pub use noise::{inject_errors, ErrorKind, InjectedError, NoiseConfig};
pub use sample::{sample_indices, split_with_duplicate_rate};
pub use scenario::{assemble, Scenario, ScenarioConfig, UniverseSpec};
