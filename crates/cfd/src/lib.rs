#![forbid(unsafe_code)]
//! # er-cfd — CTANE-style CFD discovery on master data (the paper's CTANE
//! baseline, §V-A2)
//!
//! The paper compares against adapting a conditional functional dependency
//! miner: CFDs are mined **on the master relation only** and the ones whose
//! LHS/pattern attributes all have matches in the input schema are converted
//! to editing rules. Because the pattern constants are drawn from the master
//! data's domain, conditions that only exist on the *input* side (e.g. the
//! `Overseas = No` guard of Example 1) can never be found — the root cause of
//! the CTANE baseline's low recall in Table III.
//!
//! We mine CFDs with a fixed RHS `Y_m` (the only ones convertible to editing
//! rules for the target), levelwise à la CTANE [Fan et al., TKDE'11]:
//! an *item* is either a wildcard attribute (`A, _`) or a constant attribute
//! (`A = c`); an itemset with distinct attributes is a candidate
//! `(X → Y_m, t_p)`, valid when within every group of tuples that match the
//! constants and agree on the wildcard attributes the `Y_m` value is (near-)
//! unique.

use er_rules::{EditingRule, Task};
use er_table::{AttrId, Code, GroupIndex, Relation, RowId, NULL_CODE};
use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

/// A conditional functional dependency `(X → rhs, t_p)` over the master
/// schema. `X = wildcards ∪ {a | (a, c) ∈ constants}`; `constants` is the
/// constant part of the pattern tuple (wildcard attributes carry `_`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cfd {
    /// Wildcard LHS attributes (vary freely, must agree pairwise).
    pub wildcards: Vec<AttrId>,
    /// Constant LHS attributes with their required value codes.
    pub constants: Vec<(AttrId, Code)>,
    /// The RHS attribute.
    pub rhs: AttrId,
}

/// Quality statistics of a mined CFD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfdStats {
    /// Number of master tuples matching the constant pattern (with non-NULL
    /// wildcard values).
    pub support: usize,
    /// Fraction of matching tuples kept when each wildcard group is reduced
    /// to its majority RHS value (1.0 = exact CFD).
    pub confidence: f64,
}

/// CTANE configuration.
#[derive(Debug, Clone, Copy)]
pub struct CtaneConfig {
    /// Minimum support on the master relation.
    pub support_threshold: usize,
    /// Minimum confidence (1.0 mines exact CFDs).
    pub min_confidence: f64,
    /// Maximum `|X|` (wildcards + constants).
    pub max_lhs: usize,
    /// Cap on constant items generated per attribute (the most frequent
    /// values are kept — rare constants cannot pass the support threshold
    /// anyway).
    pub max_constants_per_attr: usize,
    /// Number of CFDs to return (most supported first).
    pub k: usize,
}

impl CtaneConfig {
    /// Defaults mirroring the paper's setup: exact CFDs, `K = 50`.
    pub fn new(support_threshold: usize) -> Self {
        CtaneConfig {
            support_threshold,
            min_confidence: 1.0,
            max_lhs: 4,
            max_constants_per_attr: 32,
            k: 50,
        }
    }
}

/// Result of a CTANE run.
#[derive(Debug, Clone)]
pub struct CtaneResult {
    /// Mined CFDs with statistics, most supported first.
    pub cfds: Vec<(Cfd, CfdStats)>,
    /// Number of candidates evaluated.
    pub evaluated: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Item {
    Wildcard(AttrId),
    Constant(AttrId, Code),
}

impl Item {
    fn attr(&self) -> AttrId {
        match *self {
            Item::Wildcard(a) | Item::Constant(a, _) => a,
        }
    }
}

/// Mine CFDs `(X → rhs, t_p)` on `master` with the given RHS.
pub fn mine_cfds(master: &Relation, rhs: AttrId, config: CtaneConfig) -> CtaneResult {
    let start = Instant::now();
    // Universe of items: one wildcard per attribute plus the most frequent
    // constants per attribute.
    let mut items: Vec<Item> = Vec::new();
    for a in 0..master.num_attrs() {
        if a == rhs {
            continue;
        }
        items.push(Item::Wildcard(a));
        for code in top_values(master, a, config.max_constants_per_attr) {
            items.push(Item::Constant(a, code));
        }
    }

    let mut queue: VecDeque<Vec<Item>> = VecDeque::new();
    queue.push_back(Vec::new());
    let mut visited: HashSet<Vec<Item>> = HashSet::new();
    let mut found: Vec<(Cfd, CfdStats)> = Vec::new();
    let mut evaluated = 0usize;

    while let Some(set) = queue.pop_front() {
        for item in &items {
            if set.iter().any(|i| i.attr() == item.attr()) {
                continue;
            }
            let mut child = set.clone();
            child.push(*item);
            child.sort_unstable();
            if !visited.insert(child.clone()) {
                continue;
            }
            let cfd = to_cfd(&child, rhs);
            let stats = evaluate_cfd(master, &cfd);
            evaluated += 1;
            if stats.support < config.support_threshold {
                continue; // anti-monotone under adding constants/wildcards
            }
            let valid = stats.confidence >= config.min_confidence && !cfd.wildcards.is_empty();
            if valid {
                // Minimality: report only if no already-found CFD subsumes
                // this one (BFS guarantees subsets are seen first), and
                // don't refine valid CFDs further either way.
                let subsumed = found.iter().any(|(f, _)| {
                    subset(&f.wildcards, &cfd.wildcards) && subset(&f.constants, &cfd.constants)
                });
                if !subsumed {
                    found.push((cfd, stats));
                }
                continue;
            }
            if child.len() < config.max_lhs {
                queue.push_back(child);
            }
        }
    }

    found.sort_by(|(_, a), (_, b)| {
        b.support.cmp(&a.support).then(
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    found.truncate(config.k);
    CtaneResult {
        cfds: found,
        evaluated,
        elapsed: start.elapsed(),
    }
}

/// Sorted-slice subset test.
fn subset<T: Ord>(small: &[T], big: &[T]) -> bool {
    let mut j = 0;
    for item in small {
        loop {
            if j >= big.len() {
                return false;
            }
            match item.cmp(&big[j]) {
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Less => return false,
            }
        }
    }
    true
}

fn to_cfd(items: &[Item], rhs: AttrId) -> Cfd {
    let mut wildcards = Vec::new();
    let mut constants = Vec::new();
    for item in items {
        match *item {
            Item::Wildcard(a) => wildcards.push(a),
            Item::Constant(a, c) => constants.push((a, c)),
        }
    }
    wildcards.sort_unstable();
    constants.sort_unstable();
    Cfd {
        wildcards,
        constants,
        rhs,
    }
}

/// Most frequent non-NULL values of a column, descending.
fn top_values(rel: &Relation, attr: AttrId, k: usize) -> Vec<Code> {
    er_table::ColumnStats::compute(rel, attr).top_k(k)
}

/// Support and confidence of a CFD on the master relation.
pub fn evaluate_cfd(master: &Relation, cfd: &Cfd) -> CfdStats {
    let rows: Vec<RowId> = (0..master.num_rows())
        .filter(|&r| {
            cfd.constants.iter().all(|&(a, c)| master.code(r, a) == c)
                && cfd
                    .wildcards
                    .iter()
                    .all(|&a| master.code(r, a) != NULL_CODE)
        })
        .collect();
    if rows.is_empty() {
        return CfdStats {
            support: 0,
            confidence: 0.0,
        };
    }
    let group = GroupIndex::build_over(master, &cfd.wildcards, cfd.rhs, rows.iter().copied());
    // confidence = (Σ_group max-count) / total over distinct wildcard groups.
    let mut kept = 0usize;
    let mut total = 0usize;
    let mut key = Vec::with_capacity(cfd.wildcards.len());
    let mut seen: HashSet<Vec<Code>> = HashSet::new();
    for &r in &rows {
        key.clear();
        for &a in &cfd.wildcards {
            key.push(master.code(r, a));
        }
        if !seen.insert(key.clone()) {
            continue;
        }
        let dist = group.get(&key);
        let group_total: u32 = dist.iter().map(|&(_, n)| n).sum();
        let group_max: u32 = dist.iter().map(|&(_, n)| n).max().unwrap_or(0);
        kept += group_max as usize;
        total += group_total as usize;
    }
    CfdStats {
        support: rows.len(),
        confidence: if total == 0 {
            0.0
        } else {
            kept as f64 / total as f64
        },
    }
}

/// Convert mined CFDs to editing rules for `task` (§V-A2): a CFD is
/// convertible iff every LHS/pattern attribute has a reverse match in the
/// input schema and the RHS is the task's `Y_m`. Constant codes transfer
/// directly — relations share one value pool.
pub fn cfds_to_rules(cfds: &[(Cfd, CfdStats)], task: &Task) -> Vec<EditingRule> {
    let (_, ym) = task.target();
    // Reverse match: master attr → input attrs.
    let mut reverse: Vec<Vec<AttrId>> = vec![Vec::new(); task.master().num_attrs()];
    for (a, am) in task.matching().pairs() {
        reverse[am].push(a);
    }
    let mut rules = Vec::new();
    'cfds: for (cfd, _) in cfds {
        if cfd.rhs != ym {
            continue;
        }
        let mut lhs = Vec::new();
        for &am in &cfd.wildcards {
            match reverse[am].first() {
                Some(&a) => lhs.push((a, am)),
                None => continue 'cfds, // unmatched master attribute
            }
        }
        let mut pattern = Vec::new();
        for &(am, code) in &cfd.constants {
            match reverse[am].first() {
                Some(&a) => pattern.push(er_rules::Condition::eq(a, code)),
                None => continue 'cfds,
            }
        }
        // Reject structures Definition 1 forbids (e.g. Y on the LHS after
        // reverse matching, or duplicate input attributes).
        let mut input_attrs: Vec<AttrId> = lhs
            .iter()
            .map(|&(a, _)| a)
            .chain(pattern.iter().map(|c| c.attr))
            .collect();
        input_attrs.sort_unstable();
        let distinct = {
            let mut v = input_attrs.clone();
            v.dedup();
            v.len() == input_attrs.len()
        };
        let y = task.target().0;
        if !distinct || input_attrs.contains(&y) || lhs.is_empty() {
            continue;
        }
        rules.push(EditingRule::new(lhs, task.target(), pattern));
    }
    rules
}

/// Convenience: mine CFDs on the task's master data and convert them, like
/// the paper's CTANE baseline.
pub fn ctane_baseline(task: &Task, config: CtaneConfig) -> (Vec<EditingRule>, CtaneResult) {
    let (_, ym) = task.target();
    let result = mine_cfds(task.master(), ym, config);
    let rules = cfds_to_rules(&result.cfds, task);
    (rules, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::{DatasetKind, ScenarioConfig};
    use er_rules::apply_rules;
    use er_table::{Attribute, Pool, RelationBuilder, Schema, Value};
    use std::sync::Arc;

    /// Master where A → C holds exactly, B → C does not, and
    /// (B=b0) ∧ A → C trivially holds.
    fn master() -> Relation {
        let pool = Arc::new(Pool::new());
        let schema = Arc::new(Schema::new(
            "m",
            vec![
                Attribute::categorical("A"),
                Attribute::categorical("B"),
                Attribute::categorical("C"),
            ],
        ));
        let mut b = RelationBuilder::new(schema, pool);
        let s = Value::str;
        for (a, bb, c) in [
            ("a0", "b0", "c0"),
            ("a0", "b1", "c0"),
            ("a1", "b0", "c1"),
            ("a1", "b1", "c1"),
            ("a2", "b0", "c0"),
            ("a2", "b0", "c0"),
        ] {
            b.push_row(vec![s(a), s(bb), s(c)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn exact_fd_is_found() {
        let m = master();
        let result = mine_cfds(&m, 2, CtaneConfig::new(2));
        let a_to_c = result
            .cfds
            .iter()
            .find(|(cfd, _)| cfd.wildcards == vec![0] && cfd.constants.is_empty());
        let (_, stats) = a_to_c.expect("A → C should be mined");
        assert_eq!(stats.support, 6);
        assert_eq!(stats.confidence, 1.0);
    }

    #[test]
    fn invalid_fd_not_exact() {
        let m = master();
        let cfd = Cfd {
            wildcards: vec![1],
            constants: vec![],
            rhs: 2,
        };
        let stats = evaluate_cfd(&m, &cfd);
        assert!(stats.confidence < 1.0);
    }

    #[test]
    fn constant_pattern_conditions_work() {
        let m = master();
        let b0 = m.pool().code_of(&Value::str("b0")).unwrap();
        let cfd = Cfd {
            wildcards: vec![0],
            constants: vec![(1, b0)],
            rhs: 2,
        };
        let stats = evaluate_cfd(&m, &cfd);
        assert_eq!(stats.support, 4); // rows with B=b0
        assert_eq!(stats.confidence, 1.0);
    }

    #[test]
    fn support_counts_pattern_matches() {
        let m = master();
        let b1 = m.pool().code_of(&Value::str("b1")).unwrap();
        let cfd = Cfd {
            wildcards: vec![0],
            constants: vec![(1, b1)],
            rhs: 2,
        };
        assert_eq!(evaluate_cfd(&m, &cfd).support, 2);
    }

    #[test]
    fn minimality_prevents_refining_valid_cfds() {
        let m = master();
        let result = mine_cfds(&m, 2, CtaneConfig::new(1));
        // A → C is valid, so A,B → C must not be reported.
        assert!(!result
            .cfds
            .iter()
            .any(|(cfd, _)| cfd.wildcards == vec![0, 1] && cfd.constants.is_empty()));
    }

    #[test]
    fn conversion_to_editing_rules() {
        let s = DatasetKind::Location.build(ScenarioConfig {
            input_size: 400,
            master_size: 200,
            seed: 11,
            ..DatasetKind::Location.paper_config()
        });
        let (rules, result) = ctane_baseline(&s.task, CtaneConfig::new(5));
        assert!(!result.cfds.is_empty());
        assert!(!rules.is_empty(), "county→postcode should convert");
        // All converted rules target (Y, Y_m).
        for r in &rules {
            assert_eq!(r.target(), s.task.target());
        }
        // And they repair reasonably (precision-wise; recall is allowed to
        // be low, that is the paper's point).
        let report = apply_rules(&s.task, &rules);
        let prf = s.evaluate(&report);
        assert!(prf.precision > 0.5, "precision {}", prf.precision);
    }

    #[test]
    fn unmatched_master_attrs_block_conversion() {
        let s = DatasetKind::Covid.build(ScenarioConfig {
            input_size: 300,
            master_size: 150,
            seed: 11,
            ..DatasetKind::Covid.paper_config()
        });
        // Build a CFD on released_date, which has no input match.
        let rd = s.task.master().schema().attr_id("released_date").unwrap();
        let (_, ym) = s.task.target();
        let cfd = Cfd {
            wildcards: vec![rd],
            constants: vec![],
            rhs: ym,
        };
        let rules = cfds_to_rules(
            &[(
                cfd,
                CfdStats {
                    support: 10,
                    confidence: 1.0,
                },
            )],
            &s.task,
        );
        assert!(rules.is_empty());
    }

    #[test]
    fn top_values_orders_by_frequency() {
        let m = master();
        let top = top_values(&m, 1, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(m.pool().value(top[0]), Value::str("b0")); // 4 vs 2
    }
}
