//! Property-based tests for the CFD miner.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_cfd::{evaluate_cfd, mine_cfds, Cfd, CtaneConfig};
use er_table::{Attribute, Pool, Relation, RelationBuilder, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn relation(rows: &[(u8, u8, u8)]) -> Relation {
    let pool = Arc::new(Pool::new());
    let schema = Arc::new(Schema::new(
        "m",
        vec![
            Attribute::categorical("A"),
            Attribute::categorical("B"),
            Attribute::categorical("C"),
        ],
    ));
    let mut b = RelationBuilder::new(schema, pool);
    for &(a, bb, c) in rows {
        b.push_row(vec![
            Value::str(format!("a{a}")),
            Value::str(format!("b{bb}")),
            Value::str(format!("c{c}")),
        ])
        .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Confidence is in [0,1]; support never exceeds the row count; adding
    /// a constant condition never increases support.
    #[test]
    fn cfd_stats_bounds(rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3), 1..40)) {
        let rel = relation(&rows);
        let fd = Cfd { wildcards: vec![0], constants: vec![], rhs: 2 };
        let stats = evaluate_cfd(&rel, &fd);
        prop_assert!(stats.confidence >= 0.0 && stats.confidence <= 1.0);
        prop_assert!(stats.support <= rel.num_rows());
        prop_assert_eq!(stats.support, rel.num_rows()); // no constants, no NULLs

        let b0 = rel.pool().code_of(&Value::str("b0"));
        if let Some(b0) = b0 {
            let cond = Cfd { wildcards: vec![0], constants: vec![(1, b0)], rhs: 2 };
            let cstats = evaluate_cfd(&rel, &cond);
            prop_assert!(cstats.support <= stats.support);
        }
    }

    /// Every CFD the miner reports satisfies its own thresholds when
    /// re-evaluated from scratch.
    #[test]
    fn mined_cfds_verify(rows in prop::collection::vec((0u8..4, 0u8..3, 0u8..3), 4..40)) {
        let rel = relation(&rows);
        let config = CtaneConfig::new(2);
        let result = mine_cfds(&rel, 2, config);
        for (cfd, stats) in &result.cfds {
            let fresh = evaluate_cfd(&rel, cfd);
            prop_assert_eq!(fresh.support, stats.support);
            prop_assert!((fresh.confidence - stats.confidence).abs() < 1e-12);
            prop_assert!(fresh.support >= 2);
            prop_assert!(fresh.confidence >= config.min_confidence);
            prop_assert!(!cfd.wildcards.is_empty());
        }
    }

    /// Minimality: no reported CFD is subsumed by another reported CFD.
    #[test]
    fn mined_cfds_are_minimal(rows in prop::collection::vec((0u8..3, 0u8..3, 0u8..2), 4..40)) {
        let rel = relation(&rows);
        let result = mine_cfds(&rel, 2, CtaneConfig::new(2));
        let subset = |small: &[usize], big: &[usize]| small.iter().all(|x| big.contains(x));
        let subset_c = |small: &[(usize, u32)], big: &[(usize, u32)]| {
            small.iter().all(|x| big.contains(x))
        };
        for (i, (a, _)) in result.cfds.iter().enumerate() {
            for (j, (b, _)) in result.cfds.iter().enumerate() {
                if i == j {
                    continue;
                }
                let subsumes = subset(&a.wildcards, &b.wildcards)
                    && subset_c(&a.constants, &b.constants)
                    && (a.wildcards.len() < b.wildcards.len()
                        || a.constants.len() < b.constants.len());
                prop_assert!(!subsumes, "{a:?} subsumes {b:?}");
            }
        }
    }
}
