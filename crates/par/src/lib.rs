#![forbid(unsafe_code)]
//! # er-par — the workspace concurrency layer
//!
//! Rule-measure evaluation dominates every scalability figure of the paper
//! (§V-C, Figs. 9–12), and it is embarrassingly parallel *across rules*:
//! EnuMiner evaluates each lattice level's children independently, RLMiner
//! re-evaluates harvested candidates independently, and a pattern-cover scan
//! partitions cleanly over row ranges. This crate provides the two shared
//! primitives that make those fan-outs safe and — crucially — deterministic:
//!
//! * [`WorkerPool`] — a scoped worker pool over [`std::thread::scope`] with a
//!   chunked atomic work queue. Workers steal fixed-size chunks of the input
//!   index space and return `(index, result)` pairs; the caller scatters them
//!   back into input order, so **the reduce is ordered**: output `i` is the
//!   result of input `i` no matter how the OS scheduled the workers. With one
//!   thread (or when already running inside a pool worker) the map runs
//!   inline, byte-identical to a plain sequential loop.
//! * [`ShardedMap`] — an N-way sharded `RwLock<HashMap>` so concurrent cache
//!   fills (the `Evaluator`'s measures cache and group-index cache) do not
//!   serialize on one global mutex. Shard selection hashes with fixed-key
//!   SipHash, so a key's shard is stable across runs and thread counts.
//!
//! No external framework (no rayon, no crossbeam): `std::thread::scope` plus
//! two atomics is all the machinery the miners need, and keeping it local
//! keeps the determinism contract auditable.
//!
//! ## Determinism contract
//!
//! Every operation in this crate is a *pure reordering* of work: given the
//! same inputs and a deterministic `f`, [`WorkerPool::map`] and
//! [`WorkerPool::ranges`] return the same output `Vec` at every thread
//! count. Callers preserve end-to-end determinism by doing all
//! order-sensitive reduction (float accumulation, candidate-list pushes,
//! counter updates) sequentially over those ordered results.
//!
//! [`WorkerPool::unordered_fold`] deliberately relaxes half of that: the
//! *set* of `(index, result)` pairs it delivers is still exactly
//! `{(i, f(items[i]))}`, but pairs arrive in completion order, not input
//! order. It is only sound for folds whose outcome is arrival-order
//! independent — disjoint-slot scatters, exact counters — which is why the
//! repair engines gate it behind er-analyze's `ConfluenceCertificate` and
//! `par_determinism.rs` proves the fold byte-identical to the ordered path.
//!
//! ## Thread-count resolution
//!
//! [`resolve_threads`] maps a configured `0` ("auto") to the `ER_THREADS`
//! environment variable, defaulting to 1 (fully sequential) when unset.
//! Sequential-by-default keeps single-threaded runs free of any pool
//! overhead; CI exercises the parallel paths with `ER_THREADS=4`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

/// Environment variable consulted by [`resolve_threads`] when the configured
/// thread count is `0` ("auto").
pub const THREADS_ENV: &str = "ER_THREADS";

/// Resolve a configured thread count: `0` means "auto" — take
/// [`THREADS_ENV`] if set to a positive integer, else 1 (sequential).
/// Explicit counts pass through unchanged.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

thread_local! {
    /// Set while a [`WorkerPool`] worker is executing its closure; nested
    /// `map` calls from inside a worker run inline instead of spawning a
    /// second layer of threads (which would oversubscribe the machine).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A scoped worker pool: fan out a slice of work items over up to `threads`
/// OS threads and collect the results *in input order*.
///
/// The pool is a value, not a resource — it holds no threads between calls.
/// Each [`WorkerPool::map`] opens one [`std::thread::scope`], which lets the
/// work closure borrow from the caller's stack (the evaluator, the frontier,
/// the task) with no `Arc` plumbing, and joins every worker before
/// returning, so a panic in any work item propagates to the caller.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool that fans out over `threads` threads (clamped to at least 1);
    /// `0` resolves via [`resolve_threads`].
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: resolve_threads(threads).max(1),
        }
    }

    /// The single-threaded pool: every `map` runs inline.
    pub fn sequential() -> Self {
        WorkerPool { threads: 1 }
    }

    /// The number of worker threads this pool fans out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// Work is distributed through a chunked atomic queue: workers claim
    /// contiguous index chunks with one `fetch_add` each, which keeps the
    /// queue contention negligible while still load-balancing uneven items
    /// (a chunk is at most ¼ of an even per-worker share). Runs inline when
    /// the pool is sequential, the input is tiny, or the caller is itself a
    /// pool worker (no nested fan-out).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
            return items.iter().map(f).collect();
        }
        // ≥ 4 chunks per worker for load balancing, but never empty chunks.
        let chunk = (n / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        IN_POOL_WORKER.with(|w| w.set(true));
                        let mut out = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                out.push((i, f(item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    // A worker panicked: re-raise in the caller, exactly as
                    // the sequential loop would have.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        // Ordered reduce: scatter each worker's (index, result) pairs back
        // into input order.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for part in parts {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                // Invariant: the atomic queue hands every index in 0..n to
                // exactly one worker, and all workers joined above, so every
                // slot is filled exactly once.
                #[allow(clippy::unwrap_used)]
                slot.unwrap()
            })
            .collect()
    }

    /// Apply `f` to every item and fold each `(index, result)` pair into
    /// `fold` **in completion order**, without the ordered scatter of
    /// [`WorkerPool::map`].
    ///
    /// Every index in `0..items.len()` reaches `fold` exactly once with
    /// `f(&items[index])` — only the *arrival order* varies with scheduling.
    /// This is the primitive behind the certificate-gated merge paths: a
    /// confluent rule set's vote fold lands in disjoint per-rule slots, so
    /// arrival order is invisible in the output and skipping the scatter
    /// buffer saves one full materialization of the results. Callers without
    /// such an order-independence argument must use [`WorkerPool::map`].
    /// Runs inline (input order) when sequential, tiny, or nested.
    pub fn unordered_fold<T, R, F, G>(&self, items: &[T], f: F, mut fold: G)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        G: FnMut(usize, R),
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 || IN_POOL_WORKER.with(|w| w.get()) {
            for (i, item) in items.iter().enumerate() {
                fold(i, f(item));
            }
            return;
        }
        let chunk = (n / (workers * 4)).max(1);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
            let (f, next) = (&f, &next);
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    s.spawn(move || {
                        IN_POOL_WORKER.with(|w| w.set(true));
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                // A send error means the receiver is gone
                                // (the caller's fold panicked); stop early,
                                // the panic is already unwinding the caller.
                                if tx.send((i, f(item))).is_err() {
                                    return;
                                }
                            }
                        }
                    })
                })
                .collect();
            // Drop the spawn-loop's original sender so the channel closes
            // once every worker finishes.
            drop(tx);
            for (i, r) in rx {
                fold(i, r);
            }
            for h in handles {
                if let Err(payload) = h.join() {
                    // Re-raise a worker panic in the caller, exactly as the
                    // sequential loop would have.
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Split `0..n` into contiguous chunks, apply `f` to each chunk in
    /// parallel, and return the per-chunk results in range order.
    ///
    /// Because the ranges partition `0..n` in order, concatenating the
    /// results of an order-preserving `f` (filter, scan, collect) yields
    /// exactly the sequential output — the chunk boundaries are invisible.
    pub fn ranges<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let chunks = chunk_ranges(n, self.threads * 4);
        self.map(&chunks, |r| f(r.clone()))
    }
}

impl Default for WorkerPool {
    /// The auto-resolved pool (`ER_THREADS` or sequential).
    fn default() -> Self {
        WorkerPool::new(0)
    }
}

/// Split `0..n` into at most `chunks` contiguous, non-empty ranges covering
/// `0..n` exactly, earlier ranges no shorter than later ones.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Number of shards a [`ShardedMap`] uses by default. A small power of two:
/// enough ways that 8 writers rarely collide, few enough that summing shard
/// lengths stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// An N-way sharded `RwLock<HashMap>`: a drop-in replacement for one global
/// `Mutex<HashMap>` cache that lets concurrent readers and writers of
/// *different* keys proceed without serializing.
///
/// Shard selection hashes the key with fixed-key SipHash
/// ([`std::collections::hash_map::DefaultHasher::new`] is specified to be
/// deterministic), so a key always lands in the same shard — across calls,
/// across runs, and across thread counts.
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    /// `shards.len() - 1`; shard count is a power of two so selection is a
    /// mask, not a modulo.
    mask: u64,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// A map with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A map with `shards` shards (rounded up to a power of two, min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// The number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key belongs to — stable across runs (fixed-key SipHash).
    pub fn shard_index<Q>(&self, key: &Q) -> usize
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + ?Sized,
    {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() & self.mask) as usize
    }

    /// Clone of the value under `key`, if present.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        self.shards[self.shard_index(key)].read().get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shards[self.shard_index(key)].read().contains_key(key)
    }

    /// Insert `value` under `key`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shards[self.shard_index(&key)]
            .write()
            .insert(key, value)
    }

    /// Clone of the value under `key`, inserting `make()` first if absent.
    ///
    /// The check-then-insert races are resolved under the shard's write
    /// lock: when two threads miss simultaneously, exactly one `make()`
    /// result is stored and both return it. (`make` itself may run twice;
    /// wrap expensive builds in a `OnceLock` value to get
    /// at-most-one-builder semantics — see `Evaluator::group_index`.)
    pub fn get_or_insert_with<F>(&self, key: &K, make: F) -> V
    where
        K: Clone,
        V: Clone,
        F: FnOnce() -> V,
    {
        let shard = &self.shards[self.shard_index(key)];
        if let Some(v) = shard.read().get(key) {
            return v.clone();
        }
        let mut lock = shard.write();
        // Re-check under the write lock: another thread may have filled the
        // slot between our read miss and this write acquisition.
        lock.entry(key.clone()).or_insert_with(make).clone()
    }

    /// Total number of entries (sum over shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map holds no entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Run `f` over every `(shard index, shard contents)` pair, taking each
    /// shard's read lock in turn. Used by the `debug-invariants` audits.
    pub fn for_each_shard<F>(&self, mut f: F)
    where
        F: FnMut(usize, &HashMap<K, V>),
    {
        for (i, shard) in self.shards.iter().enumerate() {
            f(i, &shard.read());
        }
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_explicit_passes_through() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn map_preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, |x| x * 2), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_runs_every_item_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..537).collect();
        let out = WorkerPool::new(4).map(&items, |x| {
            hits.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 537);
        assert_eq!(out, items);
    }

    #[test]
    fn map_empty_and_singleton() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&[] as &[usize], |x| *x), Vec::<usize>::new());
        assert_eq!(pool.map(&[7usize], |x| x + 1), vec![8]);
    }

    #[test]
    fn nested_map_runs_inline() {
        // A map inside a worker must not deadlock or explode the thread
        // count; it runs inline and still returns ordered results.
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let out = pool.map(&items, |&x| {
            let inner: Vec<usize> = pool.map(&items, |&y| y + x);
            inner[x]
        });
        let expect: Vec<usize> = items.iter().map(|&x| 2 * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..100).collect();
        WorkerPool::new(4).map(&items, |&x| {
            assert!(x != 50, "boom");
            x
        });
    }

    #[test]
    fn unordered_fold_delivers_every_pair_exactly_once() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut slots = vec![None; items.len()];
            pool.unordered_fold(
                &items,
                |x| x * 3,
                |i, r| {
                    assert!(slots[i].is_none(), "index {i} delivered twice");
                    slots[i] = Some(r);
                },
            );
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot, Some(i * 3), "threads={threads}");
            }
        }
    }

    #[test]
    fn unordered_fold_commutative_sum_matches_sequential() {
        let items: Vec<u64> = (0..537).collect();
        let expect: u64 = items.iter().map(|x| x * x).sum();
        for threads in [1, 4, 8] {
            let mut sum = 0u64;
            WorkerPool::new(threads).unordered_fold(&items, |x| x * x, |_, r| sum += r);
            assert_eq!(sum, expect, "threads={threads}");
        }
    }

    #[test]
    fn unordered_fold_empty_and_singleton() {
        let pool = WorkerPool::new(8);
        let mut hits = 0usize;
        pool.unordered_fold(&[] as &[usize], |x| *x, |_, _| hits += 1);
        assert_eq!(hits, 0);
        pool.unordered_fold(
            &[7usize],
            |x| x + 1,
            |i, r| {
                assert_eq!((i, r), (0, 8));
                hits += 1;
            },
        );
        assert_eq!(hits, 1);
    }

    #[test]
    #[should_panic(expected = "bang")]
    fn unordered_fold_worker_panic_propagates() {
        let items: Vec<usize> = (0..100).collect();
        WorkerPool::new(4).unordered_fold(
            &items,
            |&x| {
                assert!(x != 50, "bang");
                x
            },
            |_, _| {},
        );
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 100, 1001] {
            for chunks in [1usize, 3, 8, 200] {
                let rs = chunk_ranges(n, chunks);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} chunks={chunks}");
                let mut pos = 0;
                for r in &rs {
                    assert_eq!(r.start, pos);
                    assert!(!r.is_empty());
                    pos = r.end;
                }
            }
        }
    }

    #[test]
    fn ranges_concat_equals_sequential_scan() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool
            .ranges(1000, |r| r.filter(|x| x % 7 == 0).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();
        let expect: Vec<usize> = (0..1000).filter(|x| x % 7 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sharded_map_round_trip() {
        let m: ShardedMap<String, usize> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        assert_eq!(m.get("a"), Some(2));
        assert_eq!(m.get("b"), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key("a"));
    }

    #[test]
    fn sharded_map_shard_is_stable() {
        let m: ShardedMap<u64, ()> = ShardedMap::new();
        for k in 0..100u64 {
            let s = m.shard_index(&k);
            assert_eq!(s, m.shard_index(&k));
            assert!(s < m.num_shards());
        }
    }

    #[test]
    fn get_or_insert_with_races_converge() {
        let m: ShardedMap<u64, u64> = ShardedMap::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..200u64 {
                        let v = m.get_or_insert_with(&k, || k * 10);
                        assert_eq!(v, k * 10);
                    }
                });
            }
        });
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn for_each_shard_visits_everything_in_its_shard() {
        let m: ShardedMap<u64, u64> = ShardedMap::with_shards(4);
        for k in 0..64u64 {
            m.insert(k, k);
        }
        let mut seen = 0;
        m.for_each_shard(|i, shard| {
            for k in shard.keys() {
                assert_eq!(m.shard_index(k), i, "key {k} stored in wrong shard");
                seen += 1;
            }
        });
        assert_eq!(seen, 64);
    }
}
