//! Property-based cross-crate invariants (proptest).

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use proptest::prelude::*;

/// A fixed Covid fixture shared by the property tests (building it per case
/// would dominate the runtime; the properties quantify over *rules*, not
/// over datasets).
fn fixture() -> &'static Scenario {
    use std::sync::OnceLock;
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        DatasetKind::Covid.build(ScenarioConfig {
            input_size: 300,
            master_size: 200,
            seed: 77,
            ..DatasetKind::Covid.paper_config()
        })
    })
}

/// Strategy: a random valid rule for the fixture (random subset of LHS pairs
/// plus up to two random pattern conditions).
fn arb_rule() -> impl Strategy<Value = EditingRule> {
    let s = fixture();
    let pairs = s.task.candidate_lhs_pairs();
    let space = er_rules::ConditionSpace::build(&s.task, er_rules::ConditionSpaceConfig::default());
    let conditions: Vec<Condition> = space.iter().map(|(_, _, c)| c.clone()).collect();
    let n_pairs = pairs.len();
    let n_conds = conditions.len();
    (
        proptest::bits::u32::masked((1 << n_pairs.min(20)) - 1),
        proptest::collection::vec(0..n_conds, 0..=2),
    )
        .prop_map(move |(mask, cond_ix)| {
            let lhs: Vec<_> = pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &p)| p)
                .collect();
            let mut pattern: Vec<Condition> = Vec::new();
            for i in cond_ix {
                let c = conditions[i].clone();
                if !pattern.iter().any(|p| p.attr == c.attr) && c.attr != fixture().task.target().0
                {
                    pattern.push(c);
                }
            }
            EditingRule::new(lhs, fixture().task.target(), pattern)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 1: refinement never increases support, and certainty stays in
    /// [0, 1] with support ≤ cover.
    #[test]
    fn lemma1_support_antimonotone(rule in arb_rule()) {
        let s = fixture();
        let ev = Evaluator::new(&s.task);
        let m = ev.eval(&rule, None);
        prop_assert!(m.certainty >= 0.0 && m.certainty <= 1.0);
        prop_assert!(m.quality >= -1.0 && m.quality <= 1.0);
        prop_assert!(m.support <= m.cover);

        // Refine by any LHS pair not already used.
        for &(a, am) in s.task.candidate_lhs_pairs().iter().take(3) {
            if !rule.lhs_contains_input(a) {
                let child = rule.with_lhs_pair(a, am);
                let mc = ev.eval(&child, None);
                prop_assert!(
                    mc.support <= m.support,
                    "S({:?})={} > S(parent)={}", child, mc.support, m.support
                );
                prop_assert!(er_rules::dominates(&rule, &child));
            }
        }
    }

    /// Subspace search equals full scan for any rule: evaluating on the
    /// parent's cover gives identical measures.
    #[test]
    fn subspace_search_is_exact(rule in arb_rule()) {
        let s = fixture();
        let ev = Evaluator::new(&s.task);
        let space = er_rules::ConditionSpace::build(
            &s.task, er_rules::ConditionSpaceConfig::default());
        let parent_cover = ev.cover(&rule, None);
        // Add one condition on a free attribute, if any.
        for attr in 0..space.num_attrs() {
            if rule.pattern_contains(attr) {
                continue;
            }
            if let Some(cond) = space.of(attr).first() {
                let child = rule.with_condition(cond.clone());
                let full = ev.eval_on_cover(&child, &ev.cover(&child, None));
                let sub = ev.eval_on_cover(&child, &ev.cover(&child, Some(&parent_cover)));
                prop_assert_eq!(full, sub);
                break;
            }
        }
    }

    /// select_top_k always yields a non-redundant set of at most K rules.
    #[test]
    fn top_k_non_redundant(rules in proptest::collection::vec(arb_rule(), 1..20), k in 1usize..10) {
        let s = fixture();
        let ev = Evaluator::new(&s.task);
        let scored: Vec<_> = rules.iter().map(|r| (r.clone(), ev.eval(r, None))).collect();
        let kept = select_top_k(scored, k);
        prop_assert!(kept.len() <= k);
        for (i, (a, _)) in kept.iter().enumerate() {
            for (j, (b, _)) in kept.iter().enumerate() {
                if i != j {
                    prop_assert!(!er_rules::dominates(a, b));
                }
            }
        }
    }

    /// Repair predictions are always values from the master's Y_m column,
    /// never NULL, never invented.
    #[test]
    fn repairs_come_from_master_domain(rules in proptest::collection::vec(arb_rule(), 1..5)) {
        let s = fixture();
        let report = apply_rules(&s.task, &rules);
        let (_, ym) = s.task.target();
        let master_domain: std::collections::HashSet<_> =
            s.task.master().distinct_codes(ym).into_iter().collect();
        for pred in report.predictions.iter().flatten() {
            prop_assert!(master_domain.contains(pred), "prediction {pred} not in master Y_m");
        }
    }

    /// The measure evaluator's cache is transparent: evaluating twice gives
    /// the same measures.
    #[test]
    fn evaluator_cache_transparent(rule in arb_rule()) {
        let s = fixture();
        let ev = Evaluator::new(&s.task);
        let a = ev.eval(&rule, None);
        let b = ev.eval(&rule, None);
        prop_assert_eq!(a, b);
    }

    /// Domination is a strict partial order on the sampled rules:
    /// irreflexive and antisymmetric.
    #[test]
    fn domination_is_strict_partial_order(a in arb_rule(), b in arb_rule()) {
        prop_assert!(!er_rules::dominates(&a, &a));
        if er_rules::dominates(&a, &b) {
            prop_assert!(!er_rules::dominates(&b, &a));
        }
    }
}
