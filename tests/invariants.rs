//! Invariant-checker exercises (`debug-invariants` feature).
//!
//! The feature compiles `check_invariants()` into the index layer
//! (`er-table`), the evaluator (`er-rules`), and the rule tree / action mask /
//! environment (`er-rlminer`), and makes both miners self-audit: EnuMiner
//! checks the evaluator caches after every `mine()` run, and `MinerEnv`
//! re-checks the whole environment after every `step()`. These tests drive
//! both miners with the checkers live and also probe each structure directly.
//!
//! Run with: `cargo test --features debug-invariants --test invariants`
#![cfg(feature = "debug-invariants")]
// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use er_datagen::{figure1, DatasetKind, ScenarioConfig};
use er_enuminer::{mine, EnuMinerConfig};
use er_rlminer::{
    check_mask_invariants, compute_mask, MinerEnv, RewardConfig, RlMiner, RlMinerConfig, RuleTree,
    StateEncoder,
};
use er_rules::{ConditionSpaceConfig, EditingRule, Evaluator, Measures};
use er_table::{GroupIndex, KeyIndex, Pli};

#[test]
fn enuminer_passes_invariant_audit() {
    // mine() ends with ev.check_invariants() under this feature; a violation
    // in the group indexes or cached measures would panic here.
    let s = figure1();
    let result = mine(&s.task, EnuMinerConfig::new(1));
    assert!(!result.rules.is_empty());
}

#[test]
fn enuminer_audit_holds_on_a_generated_scenario() {
    let kind = DatasetKind::Location;
    let s = kind.build(ScenarioConfig {
        input_size: 200,
        master_size: 100,
        seed: 7,
        ..kind.paper_config()
    });
    let result = mine(&s.task, EnuMinerConfig::h3(s.support_threshold));
    assert!(result.evaluated > 0);
}

#[test]
fn rlminer_env_checks_after_every_step() {
    // Every step() call re-runs the tree, evaluator, and mask checkers.
    let s = figure1();
    let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
    let mut env = MinerEnv::new(&s.task, &enc, RewardConfig::new(1), 5);
    env.check_invariants();
    for _ in 0..50 {
        let mask = env.mask();
        // Greedy walk: first allowed refinement, else stop.
        let action = (0..enc.action_dim())
            .find(|&a| mask[a] && a != enc.stop_action())
            .unwrap_or(enc.stop_action());
        if env.step(action).done {
            break;
        }
    }
    env.check_invariants();
}

#[test]
fn rlminer_training_runs_under_the_checkers() {
    let s = figure1();
    let mut config = RlMinerConfig::new(1);
    config.k = 3;
    config.train_steps = 60;
    config.max_inference_steps = 60;
    let mut miner = RlMiner::new(&s.task, config);
    miner.train(&s.task);
    let _ = miner.mine(&s.task);
}

#[test]
fn rule_tree_invariants_hold_while_growing() {
    let root = EditingRule::root((9, 9));
    let mut tree = RuleTree::new(root, Measures::zero(), vec![0, 1, 2]);
    tree.check_invariants();
    let a = tree.add_child(
        0,
        EditingRule::new(vec![(0, 0)], (9, 9), vec![]),
        Measures::zero(),
        vec![0],
    );
    let b = tree.add_child(
        0,
        EditingRule::new(vec![(1, 1)], (9, 9), vec![]),
        Measures::zero(),
        vec![1],
    );
    tree.add_child(
        a,
        EditingRule::new(vec![(0, 0), (1, 1)], (9, 9), vec![]),
        Measures::zero(),
        vec![],
    );
    tree.enqueue(a);
    tree.enqueue(b);
    tree.enqueue(a); // idempotent
    tree.check_invariants();
    tree.next_node();
    tree.set_current(b);
    tree.check_invariants();
}

#[test]
fn mask_invariants_hold_with_and_without_tree() {
    let s = figure1();
    let enc = StateEncoder::new(&s.task, ConditionSpaceConfig::default());
    let root = EditingRule::root(s.task.target());
    let mask = compute_mask(&enc, &root, None);
    check_mask_invariants(&enc, &root, None, &mask);

    // Grow a tree so the global mask has something to forbid.
    let mut tree = RuleTree::new(root.clone(), Measures::zero(), vec![]);
    let child = enc.apply(&root, 0).expect("action 0 applies at the root");
    tree.add_child(0, child, Measures::zero(), vec![]);
    let mask = compute_mask(&enc, &root, Some(&tree));
    assert!(!mask[0]);
    check_mask_invariants(&enc, &root, Some(&tree), &mask);
}

#[test]
fn index_invariants_hold_on_real_relations() {
    let s = figure1();
    let master = s.task.master();
    let idx = KeyIndex::build(master, &[2, 8]);
    idx.check_invariants(master.num_rows());

    let g = GroupIndex::build(master, &[2], 7);
    g.check_invariants();

    let p2 = Pli::build(master, 2);
    let p8 = Pli::build(master, 8);
    p2.check_invariants();
    p8.check_invariants();
    let both = p2.intersect(&p8);
    both.check_invariants();
    // The intersection is a disjoint cover refining both operands.
    assert!(both.refines(&p2.intersect(&both)));
}

#[test]
fn evaluator_invariants_hold_after_evaluation() {
    let s = figure1();
    let ev = Evaluator::new(&s.task);
    let root = EditingRule::root(s.task.target());
    ev.eval(&root, None);
    for &(a, am) in s.task.candidate_lhs_pairs().iter() {
        ev.eval(
            &EditingRule::new(vec![(a, am)], s.task.target(), vec![]),
            None,
        );
    }
    ev.check_invariants();
}
