//! Agreement between RLMiner and EnuMiner on exhaustively-checkable
//! instances — the paper's headline claim is that the RL agent matches the
//! enumeration's quality without paying its cost.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn location(seed: u64) -> Scenario {
    DatasetKind::Location.build(ScenarioConfig {
        input_size: 800,
        master_size: 500,
        seed,
        ..DatasetKind::Location.paper_config()
    })
}

#[test]
fn both_miners_find_the_planted_fd_on_location() {
    let s = location(31);
    let county = s.task.input().schema().attr_id("county").unwrap();

    let enu = erminer::enuminer::mine(&s.task, EnuMinerConfig::new(s.support_threshold));
    let enu_best = &enu.rules[0].0;
    assert!(
        enu_best.x().contains(&county),
        "EnuMiner best: {enu_best:?}"
    );

    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 4000;
    config.epsilon = (1.0, 0.05, 2400);
    let mut miner = RlMiner::new(&s.task, config);
    miner.train(&s.task);
    let rl = miner.mine(&s.task);
    assert!(
        rl.rules
            .iter()
            .take(5)
            .any(|(r, _)| r.x().contains(&county)),
        "RLMiner top-5 should include a county rule: {:?}",
        rl.rules.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn rlminer_top_utility_close_to_enuminer() {
    let s = location(32);
    let enu = erminer::enuminer::mine(&s.task, EnuMinerConfig::new(s.support_threshold));
    let enu_top = enu.rules[0].1.utility;

    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 4000;
    config.epsilon = (1.0, 0.05, 2400);
    let mut miner = RlMiner::new(&s.task, config);
    miner.train(&s.task);
    let rl = miner.mine(&s.task);
    let rl_top = rl.rules[0].1.utility;
    assert!(
        rl_top >= enu_top * 0.8,
        "RLMiner top utility {rl_top} too far below EnuMiner's {enu_top}"
    );
}

#[test]
fn rlminer_is_far_cheaper_in_rule_evaluations() {
    let s = location(33);
    let enu = erminer::enuminer::mine(&s.task, EnuMinerConfig::new(s.support_threshold));

    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 4000;
    let mut miner = RlMiner::new(&s.task, config);
    let stats = miner.train(&s.task);
    assert!(
        stats.fresh_evaluations * 5 < enu.evaluated,
        "RLMiner fresh {} vs EnuMiner {}",
        stats.fresh_evaluations,
        enu.evaluated
    );
}

#[test]
fn enuminer_h3_between_full_and_rl_in_coverage() {
    let s = location(34);
    let full = erminer::enuminer::mine(&s.task, EnuMinerConfig::new(s.support_threshold));
    let h3 = erminer::enuminer::mine(&s.task, EnuMinerConfig::h3(s.support_threshold));
    // H3 evaluates no more candidates than the exhaustive run, and its
    // repair quality stays close (Figures 8–9).
    assert!(h3.evaluated <= full.evaluated);
    let full_prf = s.evaluate(&apply_rules(&s.task, &full.rules_only()));
    let h3_prf = s.evaluate(&apply_rules(&s.task, &h3.rules_only()));
    assert!(
        (full_prf.f1 - h3_prf.f1).abs() < 0.1,
        "full {} vs h3 {}",
        full_prf.f1,
        h3_prf.f1
    );
}
