//! Persistence pipelines: discovered rules and trained value networks
//! survive a round trip to disk and keep working against re-loaded data.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use erminer::rules::{rules_from_json, rules_to_json};

fn scenario(seed: u64) -> Scenario {
    DatasetKind::Covid.build(ScenarioConfig {
        input_size: 400,
        master_size: 250,
        seed,
        ..DatasetKind::Covid.paper_config()
    })
}

#[test]
fn mined_rules_round_trip_through_json() {
    let s = scenario(41);
    let mut config = EnuMinerConfig::new(s.support_threshold);
    config.max_rules_evaluated = Some(50_000);
    let result = erminer::enuminer::mine(&s.task, config);
    assert!(!result.rules.is_empty());

    let json = rules_to_json(&result.rules, &s.task);
    // Re-generate the scenario: a fresh pool with fresh codes.
    let s2 = scenario(41);
    let loaded = rules_from_json(&json, &s2.task).expect("load rules");
    assert_eq!(loaded.len(), result.rules.len());

    // Same rules, same data ⇒ identical repair quality.
    let before = s.evaluate(&apply_rules(&s.task, &result.rules_only()));
    let after = s2.evaluate(&apply_rules(&s2.task, &loaded));
    assert!((before.f1 - after.f1).abs() < 1e-12);
    assert_eq!(before.predicted, after.predicted);
}

#[test]
fn rules_survive_schema_compatible_new_data() {
    // Mine on one sample, save, load against a *different* sample of the
    // same dataset (different seed = different rows, same schema).
    let s = scenario(42);
    let mut config = EnuMinerConfig::new(s.support_threshold);
    config.max_rules_evaluated = Some(50_000);
    let result = erminer::enuminer::mine(&s.task, config);
    let json = rules_to_json(&result.rules, &s.task);

    let other = scenario(43);
    let loaded = rules_from_json(&json, &other.task).expect("load onto new data");
    let prf = other.evaluate(&apply_rules(&other.task, &loaded));
    // Rules generalize across samples of the same distribution.
    assert!(prf.precision > 0.4, "precision {}", prf.precision);
}

#[test]
fn trained_network_round_trips() {
    let s = scenario(44);
    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 1200;
    config.epsilon = (1.0, 0.05, 800);
    config.hidden = vec![64];
    let mut trained = RlMiner::new(&s.task, config.clone());
    trained.train(&s.task);

    let dir = std::env::temp_dir().join("erminer_it_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("covid_net.json");
    trained.save_network(&path).unwrap();

    // A loaded network restores the *policy* (not the training-tree
    // harvest, which lives with the trained miner): two independently
    // loaded miners must mine identically, and usefully.
    let mut fresh1 = RlMiner::new(&s.task, config.clone());
    fresh1.load_network(&path).unwrap();
    let mut fresh2 = RlMiner::new(&s.task, config);
    fresh2.load_network(&path).unwrap();
    let a = fresh1.mine(&s.task);
    let b = fresh2.mine(&s.task);
    assert_eq!(a.rules_only(), b.rules_only());
    assert!(!a.rules.is_empty());
    // The trained miner's pool is a superset of what pure inference finds.
    assert!(trained.mine(&s.task).discovered >= a.discovered);
    std::fs::remove_file(&path).ok();
}

#[test]
fn loaded_network_can_be_fine_tuned() {
    let s = scenario(45);
    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 1000;
    config.finetune_steps = 300;
    config.hidden = vec![64];
    let mut a = RlMiner::new(&s.task, config.clone());
    a.train(&s.task);

    let dir = std::env::temp_dir().join("erminer_it_persistence");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ft_net.json");
    a.save_network(&path).unwrap();

    let mut b = RlMiner::new(&s.task, config);
    b.load_network(&path).unwrap();
    let stats = b.fine_tune(&s.task);
    assert_eq!(stats.steps, 300);
    assert!(!b.mine(&s.task).rules.is_empty());
    std::fs::remove_file(&path).ok();
}
