//! Integration: mine per-target rule sets, then chase to a fixpoint.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;
use erminer::rules::{chase, ChaseConfig, TargetRules};

/// Mine rules for a target attribute of the Figure-1 scenario.
fn mine_for(scenario: &Scenario, attr: &str) -> TargetRules {
    let input = scenario.task.input();
    let master = scenario.task.master();
    let y = input.schema().attr_id(attr).unwrap();
    let ym = master.schema().attr_id(attr).unwrap();
    let task = Task::new(
        input.clone(),
        master.clone(),
        scenario.task.matching().clone(),
        (y, ym),
    );
    let mined = erminer::enuminer::mine(&task, EnuMinerConfig::new(1));
    TargetRules {
        target: (y, ym),
        rules: mined.rules_only(),
    }
}

#[test]
fn figure1_chase_fills_zip_then_ac() {
    let s = erminer::datagen::figure1();
    let input = s.task.input().clone();
    let master = s.task.master().clone();
    let matching = s.task.matching().clone();
    let targets = vec![mine_for(&s, "ZIP"), mine_for(&s, "AC")];

    let result = chase(&input, &master, &matching, &targets, ChaseConfig::default());
    let pool = input.pool();
    let code = |v: &str| pool.code_of(&Value::str(v)).unwrap();
    let zip = input.schema().attr_id("ZIP").unwrap();
    let ac = input.schema().attr_id("AC").unwrap();

    // Kevin (t1): ZIP was NULL; City=HZ ⇒ 31200, which then unlocks AC=571.
    assert_eq!(result.repaired.code(0, zip), code("31200"));
    assert_eq!(result.repaired.code(0, ac), code("571"));
    // Robin (t3): ZIP=31200 present ⇒ AC=571 directly.
    assert_eq!(result.repaired.code(2, ac), code("571"));
    // Kyrie (t2): already has ZIP and AC; untouched.
    assert_eq!(result.repaired.code(1, ac), code("010"));
    // Fixpoint within the round budget.
    assert!(result.rounds <= ChaseConfig::default().max_rounds);
}

#[test]
fn chase_is_idempotent_on_repaired_data() {
    let s = erminer::datagen::figure1();
    let input = s.task.input().clone();
    let master = s.task.master().clone();
    let matching = s.task.matching().clone();
    let targets = vec![mine_for(&s, "ZIP"), mine_for(&s, "AC")];
    let first = chase(&input, &master, &matching, &targets, ChaseConfig::default());
    let second = chase(
        &first.repaired,
        &master,
        &matching,
        &targets,
        ChaseConfig::default(),
    );
    assert!(second.fixes.is_empty(), "second chase must be a no-op");
}
