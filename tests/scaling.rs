//! Scaling mechanics behind Figures 8–9: EnuMiner's enumeration cost grows
//! with the input domain; RLMiner's evaluation count is bounded by its step
//! budget regardless of data size.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn adult(input: usize, master: usize) -> Scenario {
    DatasetKind::Adult.build(ScenarioConfig {
        input_size: input,
        master_size: master,
        seed: 51,
        ..DatasetKind::Adult.paper_config()
    })
}

#[test]
fn enuminer_cost_grows_with_input_size() {
    let small = adult(600, 300);
    let large = adult(1800, 300);
    let mine = |s: &Scenario| {
        let mut c = EnuMinerConfig::new(s.support_threshold);
        c.max_rules_evaluated = Some(400_000);
        erminer::enuminer::mine(&s.task, c)
    };
    let a = mine(&small);
    let b = mine(&large);
    // Bigger input ⇒ bigger domains ⇒ more candidate conditions. Unless
    // both runs hit the budget, the larger instance evaluates more.
    assert!(
        b.evaluated > a.evaluated || b.evaluated == 400_000,
        "small {} vs large {}",
        a.evaluated,
        b.evaluated
    );
    // And each evaluation is costlier: wall-clock must grow. Scheduler
    // noise on a loaded single-core runner can still swing short runs, so
    // allow a 2x margin — a real regression inverts the ratio far past it.
    assert!(
        b.elapsed.as_secs_f64() >= a.elapsed.as_secs_f64() / 2.0,
        "{:?} vs {:?}",
        a.elapsed,
        b.elapsed
    );
}

#[test]
fn rlminer_cost_is_step_bounded_at_any_size() {
    for (input, master) in [(600, 300), (1800, 300)] {
        let s = adult(input, master);
        let mut config = RlMinerConfig::new(s.support_threshold);
        config.train_steps = 1000;
        config.hidden = vec![64];
        let mut miner = RlMiner::new(&s.task, config);
        let stats = miner.train(&s.task);
        assert!(
            stats.fresh_evaluations <= 1000,
            "input {input}: {} fresh evaluations",
            stats.fresh_evaluations
        );
    }
}

#[test]
fn h3_heuristic_caps_depth_but_keeps_quality_close() {
    let s = adult(1000, 400);
    let full = {
        let mut c = EnuMinerConfig::new(s.support_threshold);
        c.max_rules_evaluated = Some(300_000);
        erminer::enuminer::mine(&s.task, c)
    };
    let h3 = erminer::enuminer::mine(&s.task, EnuMinerConfig::h3(s.support_threshold));
    let f_full = s.evaluate(&apply_rules(&s.task, &full.rules_only())).f1;
    let f_h3 = s.evaluate(&apply_rules(&s.task, &h3.rules_only())).f1;
    assert!((f_full - f_h3).abs() < 0.15, "full {f_full} vs h3 {f_h3}");
}

#[test]
fn master_size_affects_cost_less_than_input_size() {
    // Fig. 9's observation: growing the master matters less for EnuMiner's
    // cost than growing the input (conditions are enumerated from the
    // *input* domain).
    let base = adult(800, 200);
    let big_master = adult(800, 600);
    let big_input = adult(2400, 200);
    let mine = |s: &Scenario| {
        let mut c = EnuMinerConfig::new(s.support_threshold);
        c.max_rules_evaluated = Some(400_000);
        erminer::enuminer::mine(&s.task, c).evaluated
    };
    let e_base = mine(&base) as f64;
    let e_master = mine(&big_master) as f64;
    let e_input = mine(&big_input) as f64;
    let master_growth = (e_master / e_base - 1.0).abs();
    let input_growth = (e_input / e_base - 1.0).abs();
    assert!(
        input_growth >= master_growth * 0.8,
        "input growth {input_growth} vs master growth {master_growth}"
    );
}
