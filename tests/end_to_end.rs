//! End-to-end pipelines: generate → discover → repair → evaluate, across
//! datasets and miners.

// Test code: a panic is the failure report; fixture helpers sit outside
// any #[test] fn, so the clippy.toml test exemption does not reach them.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use erminer::prelude::*;

fn small(kind: DatasetKind, seed: u64) -> Scenario {
    kind.build(ScenarioConfig {
        input_size: 500,
        master_size: 300,
        seed,
        ..kind.paper_config()
    })
}

fn enu(scenario: &Scenario) -> er_enuminer::MineResult {
    let mut config = EnuMinerConfig::new(scenario.support_threshold);
    config.max_rules_evaluated = Some(120_000);
    erminer::enuminer::mine(&scenario.task, config)
}

#[test]
fn enuminer_repairs_every_dataset() {
    for kind in DatasetKind::all() {
        let s = small(kind, 21);
        let result = enu(&s);
        assert!(!result.rules.is_empty(), "{}: no rules", kind.name());
        let prf = s.evaluate(&apply_rules(&s.task, &result.rules_only()));
        assert!(prf.f1 > 0.25, "{}: f1 {}", kind.name(), prf.f1);
        assert!(
            prf.precision > 0.3,
            "{}: precision {}",
            kind.name(),
            prf.precision
        );
    }
}

#[test]
fn ctane_has_lower_recall_than_enuminer() {
    // The paper's core claim about the CFD baseline (Table III): CFDs mined
    // only on master data (with exact confidence) miss input-side conditions
    // and cover far fewer tuples. Run at the Covid dataset's natural scale,
    // where the approximate planted dependency rejects the global FD.
    let s = DatasetKind::Covid.build(ScenarioConfig {
        seed: 22,
        ..DatasetKind::Covid.paper_config()
    });
    let master_eta =
        ((s.support_threshold * s.task.master().num_rows()) / s.task.input().num_rows()).max(3);
    let (ctane_rules, _) = ctane_baseline(&s.task, CtaneConfig::new(master_eta));
    let ctane_prf = s.evaluate(&apply_rules(&s.task, &ctane_rules));
    let enu_prf = s.evaluate(&apply_rules(&s.task, &enu(&s).rules_only()));
    assert!(
        ctane_prf.recall < enu_prf.recall,
        "CTANE recall {} should trail EnuMiner {}",
        ctane_prf.recall,
        enu_prf.recall
    );
}

#[test]
fn rlminer_end_to_end_on_covid() {
    // Covid at its natural (paper) scale — below ~1500 input rows the
    // support threshold interacts badly with the per-value pattern supports
    // and every miner degrades.
    let s = DatasetKind::Covid.build(ScenarioConfig {
        seed: 23,
        ..DatasetKind::Covid.paper_config()
    });
    let mut config = RlMinerConfig::new(s.support_threshold);
    config.train_steps = 3000;
    config.epsilon = (1.0, 0.08, 1800);
    // Double-DQN markedly stabilizes learning on this task (see the
    // ablation results); use it here to keep the test robust to seeds.
    config.double_dqn = true;
    let mut miner = RlMiner::new(&s.task, config);
    let stats = miner.train(&s.task);
    assert_eq!(stats.steps, 3000);
    let result = miner.mine(&s.task);
    assert!(!result.rules.is_empty());
    let prf = s.evaluate(&apply_rules(&s.task, &result.rules_only()));
    // Run-to-run variance on Covid is real (EXPERIMENTS.md); assert a
    // floor that separates learning from noise, not the tuned best case.
    assert!(prf.f1 > 0.3, "f1 {}", prf.f1);
    // RLMiner must not have enumerated: fresh evaluations bounded by steps.
    assert!(stats.fresh_evaluations <= stats.steps);
}

#[test]
fn repaired_relation_changes_only_y() {
    let s = small(DatasetKind::Location, 24);
    let result = enu(&s);
    let report = apply_rules(&s.task, &result.rules_only());
    let repaired = report.apply(&s.task);
    let input = s.task.input();
    let (y, _) = s.task.target();
    for row in 0..input.num_rows() {
        for attr in 0..input.num_attrs() {
            if attr != y {
                assert_eq!(repaired.code(row, attr), input.code(row, attr));
            }
        }
    }
    // And some Y cells actually changed.
    assert!(er_rules::changed_rows(&s.task, &report).len() > 10);
}

#[test]
fn figure1_pipeline_repairs_kevin() {
    let s = erminer::datagen::figure1();
    let result = erminer::enuminer::mine(&s.task, EnuMinerConfig::new(1));
    let report = apply_rules(&s.task, &result.rules_only());
    // t1 (Kevin) has a missing Case; the pipeline must propose a fix and it
    // must be the ground truth "contact with patient".
    let truth = s.truth_y[0];
    assert_eq!(report.predictions[0], Some(truth));
}

#[test]
fn mining_respects_duplicate_rate_extremes() {
    // duplicate_rate = 1.0: every input entity is in the master; repairs
    // should be near-perfect with the planted FD.
    let kind = DatasetKind::Location;
    let hi = kind.build(ScenarioConfig {
        input_size: 500,
        master_size: 300,
        duplicate_rate: Some(1.0),
        seed: 25,
        ..kind.paper_config()
    });
    let lo = kind.build(ScenarioConfig {
        input_size: 500,
        master_size: 300,
        duplicate_rate: Some(0.1),
        seed: 25,
        ..kind.paper_config()
    });
    let hi_prf = hi.evaluate(&apply_rules(&hi.task, &enu(&hi).rules_only()));
    let lo_prf = lo.evaluate(&apply_rules(&lo.task, &enu(&lo).rules_only()));
    // More duplicates ⇒ at least as good F1 (Figure 7's monotone trend).
    assert!(
        hi_prf.f1 + 0.05 >= lo_prf.f1,
        "hi {} vs lo {}",
        hi_prf.f1,
        lo_prf.f1
    );
}
