//! `er-serve` — the long-lived repair service CLI.
//!
//! Loads a dataset scenario (or a CSV pair) and a mined rule-set JSON file,
//! warms the master-side indexes once, and serves the newline-delimited
//! JSON repair protocol over stdin/stdout (default) or a TCP socket
//! (`--tcp ADDR`). See DESIGN.md §10 for the protocol grammar.

use er_serve::{
    serve_pipe, EngineError, ReloadError, RepairEngine, ServeConfig, Server, TcpServer,
};
use std::io::{BufReader, BufWriter};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: er-serve --rules FILE [options]
data source (pick one):
  --dataset NAME     any dataset-registry name: figure1 (default), adult,
                     covid, nursery, location, or one from --registry
  --registry PATH    JSON config of extra named datasets (generator
                     variants or chunk-streamed CSV pairs); see
                     examples/datasets.json
  --seed N           scenario seed for the generated datasets (default 1)
  --input CSV --master CSV --target Y[:Y_m]
                     serve over your own CSV pair (shared value pool);
                     Y is the input target attribute, Y_m the master one
                     (defaults to Y)
transport:
  --tcp ADDR         socket mode (e.g. 127.0.0.1:7777); default is pipe
                     mode over stdin/stdout
tuning:
  --threads N        repair worker threads (default 0 = ER_THREADS or 1)
  --shards N         partition the master into N independent engine shards
                     keyed by the rules' common LHS routing pair (default 1
                     = unsharded); answers are byte-identical at any shard
                     count; stats reports shards, shard_routed,
                     shard_broadcast and shard_imbalance
  --deadline-ms N    per-request repair deadline (default: none)
  --queue N          max in-flight repairs / waiting connections (default 64)
  --max-rows N       max rows per repair request (default 4096)
  --max-line-bytes N max request line length (default 1048576)
  --workers N        TCP connection workers (default 4)
  --log-every N      stderr metrics line every N requests (default 0 = off)
  --no-analysis-gate load, reload and append without the er-analyze gate
                     (default: rule sets with an ER008 dependency cycle or
                     an ER009 conflict are refused; stats counts rejected)
protocol (one JSON object per line):
  {\"op\":\"ping\"} | {\"op\":\"stats\"} | {\"op\":\"reload\"} | {\"op\":\"shutdown\"}
  {\"op\":\"repair\",\"rows\":[[cell,...],...]}   cells in input-schema order
  {\"op\":\"append\",\"rows\":[[cell,...],...]}   cells in master-schema order;
                     grows the master in place, delta-updating the warm
                     indexes (stats reports appends + engine_generation)
  {\"op\":\"repair_csv\",\"path\":PATH,\"chunk_bytes\":N?}  stream a server-side
                     CSV (header must match the input schema) through the
                     engine chunk by chunk under one backpressure slot and
                     a per-chunk deadline; answers totals only
                     ({rows, chunks, fixed}; stats: ingested_rows,
                     ingest_chunks)
  {\"op\":\"reload\",\"scope\":SCOPE}            gate the promotion on a declared
                     edit scope: verdict changes outside SCOPE are ER012
                     and the reload is refused (stats: rejected_by_code)
  {\"op\":\"diff\",\"rules\":[...],\"scope\":SCOPE?}  compare the live rule set
                     against a candidate portable document without
                     promoting: reports changed signatures with witnesses
  {\"op\":\"versions\"}  the rule version store: lineage, content hashes and
                     promotion notes (reloads commit new versions)
  SCOPE := {attr:value,...} or a list of such conjunctions
shutdown: send {\"op\":\"shutdown\"} or close stdin (pipe mode); every fully
read request is answered before the service exits";

struct Args {
    rules: Option<String>,
    dataset: String,
    registry: Option<String>,
    seed: u64,
    input: Option<String>,
    master: Option<String>,
    target: Option<String>,
    tcp: Option<String>,
    threads: usize,
    shards: usize,
    config: ServeConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        rules: None,
        dataset: "figure1".to_string(),
        registry: None,
        seed: 1,
        input: None,
        master: None,
        target: None,
        tcp: None,
        threads: 0,
        shards: 1,
        config: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => args.rules = Some(need(&mut it, "--rules")),
            "--dataset" => args.dataset = need(&mut it, "--dataset"),
            "--registry" => args.registry = Some(need(&mut it, "--registry")),
            "--seed" => args.seed = need_num(&mut it, "--seed"),
            "--input" => args.input = Some(need(&mut it, "--input")),
            "--master" => args.master = Some(need(&mut it, "--master")),
            "--target" => args.target = Some(need(&mut it, "--target")),
            "--tcp" => args.tcp = Some(need(&mut it, "--tcp")),
            "--threads" => args.threads = need_num(&mut it, "--threads"),
            "--shards" => args.shards = need_num(&mut it, "--shards"),
            "--deadline-ms" => {
                let ms: u64 = need_num(&mut it, "--deadline-ms");
                args.config.deadline = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--queue" => args.config.queue_capacity = need_num(&mut it, "--queue"),
            "--max-rows" => args.config.max_batch_rows = need_num(&mut it, "--max-rows"),
            "--max-line-bytes" => {
                args.config.max_line_bytes = need_num(&mut it, "--max-line-bytes")
            }
            "--workers" => args.config.workers = need_num(&mut it, "--workers"),
            "--log-every" => args.config.log_every = need_num(&mut it, "--log-every"),
            "--no-analysis-gate" => args.config.analysis_gate = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn need_num<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag)
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn load_scenario(args: &Args) -> er_datagen::Scenario {
    if let (Some(input), Some(master)) = (&args.input, &args.master) {
        let target = args
            .target
            .clone()
            .unwrap_or_else(|| die("--input/--master mode needs --target Y[:Y_m]"));
        let (y, ym) = match target.split_once(':') {
            Some((a, b)) => (a.to_string(), b.to_string()),
            None => (target.clone(), target.clone()),
        };
        let options = er_datagen::CsvScenarioOptions::new("csv", y, ym);
        match er_datagen::scenario_from_csv(input, master, &options) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: loading CSVs: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let mut registry = er_ingest::DatasetRegistry::builtin();
        if let Some(path) = &args.registry {
            if let Err(e) = registry.load_config(path) {
                die(&format!("--registry {path}: {e}"));
            }
        }
        let knobs = er_ingest::ScaleKnobs {
            scale: 1.0,
            seed: args.seed,
        };
        match registry.build(&args.dataset, &knobs) {
            Ok(s) => s,
            Err(e) => die(&e.to_string()),
        }
    }
}

fn main() {
    let args = parse_args();
    let Some(rules_path) = args.rules.clone() else {
        die("--rules FILE is required");
    };
    let scenario = load_scenario(&args);
    let task = scenario.task.clone();
    let json = match std::fs::read_to_string(&rules_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {rules_path}: {e}");
            std::process::exit(1);
        }
    };
    let load = if args.config.analysis_gate {
        RepairEngine::from_json_gated_sharded(&task, &json, args.threads, args.shards)
    } else {
        RepairEngine::from_json_sharded(&task, &json, args.threads, args.shards)
    };
    let engine = match load {
        Ok(e) => e,
        Err(EngineError::Analysis(report)) => {
            eprintln!("error: rule set rejected by static analysis");
            eprint!("{}", report.render_text());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "er-serve: {} rules, {} warm indexes, target {:?}, master {} rows, {} shard(s)",
        engine.num_rules(),
        engine.num_indexes(),
        engine.target_attr(),
        task.master().num_rows(),
        engine.shards()
    );
    let reload_task = task.clone();
    let threads = args.threads;
    let shards = args.shards;
    let gated = args.config.analysis_gate;
    let server = Server::new(engine, args.config.clone()).with_reloader(Box::new(move || {
        let json =
            std::fs::read_to_string(&rules_path).map_err(|e| ReloadError::Failed(e.to_string()))?;
        let load = if gated {
            RepairEngine::from_json_gated_sharded(&reload_task, &json, threads, shards)
        } else {
            RepairEngine::from_json_sharded(&reload_task, &json, threads, shards)
        };
        load.map_err(|e| match e {
            EngineError::Analysis(report) => ReloadError::Analysis(report),
            other => ReloadError::Failed(other.to_string()),
        })
    }));

    match &args.tcp {
        Some(addr) => {
            let server = Arc::new(server);
            let tcp = match TcpServer::bind(Arc::clone(&server), addr.as_str()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!("er-serve: listening on {}", tcp.local_addr());
            tcp.join();
            eprintln!("er-serve: drained; {}", server.snapshot().log_line());
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut reader = BufReader::new(stdin.lock());
            let mut writer = BufWriter::new(stdout.lock());
            if let Err(e) = serve_pipe(&server, &mut reader, &mut writer) {
                eprintln!("error: pipe transport failed: {e}");
                std::process::exit(1);
            }
            eprintln!("er-serve: drained; {}", server.snapshot().log_line());
        }
    }
}
