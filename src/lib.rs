#![forbid(unsafe_code)]
//! # erminer — discovering editing rules by deep reinforcement learning
//!
//! A complete Rust implementation of the ICDE 2023 paper *"Discovering
//! Editing Rules by Deep Reinforcement Learning"*: editing rules (Fan et al.,
//! VLDBJ 2012) repair a low-quality input relation using high-quality
//! relational master data; this workspace discovers them automatically with
//!
//! * **RLMiner** ([`rlminer`]) — the paper's contribution: a masked DQN
//!   agent grows a rule tree as a Markov Decision Process, guided by a
//!   utility-shaped reward, avoiding the enumeration of the condition space;
//! * **EnuMiner / EnuMinerH3** ([`enuminer`]) — the enumeration baseline
//!   with support pruning and cover-based subspace search;
//! * **CTANE** ([`cfd`]) — the CFD-transfer baseline mined on master data.
//!
//! Supporting layers: a dictionary-encoded relational substrate
//! ([`table`]), the rule/measure/repair domain model ([`rules`]), a
//! from-scratch deep-RL stack ([`rl`]), and synthetic dataset generators
//! with BART-style error injection ([`datagen`]).
//!
//! ## Quickstart
//!
//! ```
//! use erminer::prelude::*;
//!
//! // The paper's Figure 1: 3 self-reported registration tuples repaired
//! // against 4 national COVID-19 records.
//! let scenario = erminer::datagen::figure1();
//!
//! // Mine with the enumeration baseline (exact),
//! let enu = erminer::enuminer::mine(&scenario.task, EnuMinerConfig::new(1));
//! assert!(!enu.rules.is_empty());
//!
//! // ... and repair the input with the discovered rules.
//! let report = apply_rules(&scenario.task, &enu.rules_only());
//! let quality = scenario.evaluate(&report);
//! assert!(quality.precision > 0.0);
//! ```
//!
//! For RLMiner itself see [`rlminer::RlMiner`]; for the experiment harness
//! regenerating every table and figure of the paper, see the `er-bench`
//! crate (`cargo run -p er-bench --release --bin experiments -- all`).

pub use er_cfd as cfd;
pub use er_datagen as datagen;
pub use er_enuminer as enuminer;
pub use er_incr as incr;
pub use er_rl as rl;
pub use er_rlminer as rlminer;
pub use er_rules as rules;
pub use er_table as table;

/// The commonly-used types in one import.
pub mod prelude {
    pub use er_cfd::{ctane_baseline, CtaneConfig};
    pub use er_datagen::{
        scenario_from_csv, CsvScenarioOptions, DatasetKind, Scenario, ScenarioConfig,
    };
    pub use er_enuminer::EnuMinerConfig;
    pub use er_incr::{AppendOutcome, IncrCounters, IncrEngine};
    pub use er_rlminer::{RlMiner, RlMinerConfig};
    pub use er_rules::{
        apply_rules, chase, coverage, evaluate_repairs, rules_from_json, rules_to_json,
        select_top_k, ChaseConfig, Condition, EditingRule, Evaluator, Measures, SchemaMatch,
        TargetRules, Task, WeightedPrf,
    };
    pub use er_table::{
        Attribute, ColumnStats, DataType, Pool, Relation, RelationBuilder, Schema, Value,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        let s = crate::datagen::figure1();
        assert_eq!(s.task.input().num_rows(), 3);
    }
}
