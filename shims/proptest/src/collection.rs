//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Admissible length specifications for [`vec`]: an exact `usize`, `a..b`,
/// or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + rng.below(span.max(1));
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `len` elements of `element` per sample.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: len.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_test("collection::lengths");
        let s = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
        let exact = vec(0u8..10, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
        let incl = vec(0u8..10, 0..=2);
        for _ in 0..100 {
            assert!(incl.generate(&mut rng).len() <= 2);
        }
    }
}
