//! Deterministic test configuration and RNG.

/// Rejection/failure value property bodies may return via `Err(...)` or
/// `prop_assume!`-style early exits. The shim treats any `Err` as a failure.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration. Only `cases` is honored by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Same default case count as upstream proptest.
        ProptestConfig { cases: 256 }
    }
}

/// xoshiro256++ RNG seeded from a test's identity, so every run of a given
/// test generates the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Derive a deterministic generator from a test's full path.
    pub fn for_test(test_path: &str) -> Self {
        // FNV-1a over the path, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_same_stream() {
        let mut a = TestRng::for_test("mod::t1");
        let mut b = TestRng::for_test("mod::t1");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_paths_diverge() {
        let mut a = TestRng::for_test("mod::t1");
        let mut b = TestRng::for_test("mod::t2");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
