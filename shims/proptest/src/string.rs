//! Regex-pattern string strategies (`"[a-z]{0,6}"` as a [`Strategy`]).
//!
//! Supports the subset of regex syntax used as generators in this workspace:
//! literal characters, character classes with ranges (`[a-z0-9_]`), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8
//! repetitions). Anything fancier panics with a clear message.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single members are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            c if "(){}*+?|^$.".contains(c) => {
                panic!("proptest shim: unsupported regex construct `{c}` in {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + (rng.next_u64() % u64::from(span)) as u32)
                .expect("class range stays in valid chars")
        }
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::for_test("string::class");
        let mut seen_empty = false;
        for _ in 0..300 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            seen_empty |= s.is_empty();
        }
        assert!(seen_empty, "length 0 should occur within 300 draws");
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::for_test("string::lit");
        assert_eq!("abc".generate(&mut rng), "abc");
        let s = "[01]{4}x".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.ends_with('x'));
    }
}
