//! Bit-set strategies (`proptest::bits::u32::masked`).

/// `u32` bit-set strategies.
pub mod u32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding random subsets of the bits set in a mask.
    #[derive(Debug, Clone, Copy)]
    pub struct Masked(u32);

    impl Strategy for Masked {
        type Value = u32;

        fn generate(&self, rng: &mut TestRng) -> u32 {
            (rng.next_u64() as u32) & self.0
        }
    }

    /// Random subsets of `mask`'s set bits.
    pub fn masked(mask: u32) -> Masked {
        Masked(mask)
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn masked_stays_inside_mask() {
        let mut rng = TestRng::for_test("bits::masked");
        let s = super::u32::masked(0b1010_1100);
        for _ in 0..200 {
            assert_eq!(s.generate(&mut rng) & !0b1010_1100, 0);
        }
    }
}
