//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly among a fixed list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}

/// Choose uniformly from `items`.
///
/// # Panics
/// Panics if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select { items }
}
