//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this shim. It keeps the same authoring surface the repo's
//! property tests use — `proptest! { #![proptest_config(...)] #[test] fn
//! f(x in strategy) {...} }`, `prop_assert!`/`prop_assert_eq!`, range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop_oneof!`, `Just`, `any::<T>()`, `bits::u32::masked`, simple regex
//! string strategies, and `.prop_map` — but swaps the engine for a plain
//! deterministic loop: each test derives a fixed RNG seed from its module
//! path and name, generates `cases` inputs, and runs the body. There is no
//! shrinking; failures print the case number and every generated input
//! (which regenerate identically on the next run).

pub mod bits;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-path alias so `prop::collection::vec` etc. resolve.
    pub mod prop {
        pub use crate::bits;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Define property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                // Bodies may `return Ok(())` early (real proptest bodies are
                // `Result`-typed), so run them through a Result closure.
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(__reject)) => {
                        ::std::eprintln!(
                            "proptest shim: `{}` rejected case {}/{}: {:?}\ninputs:\n{}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __reject,
                            __inputs,
                        );
                        ::std::panic!("property rejected: {:?}", __reject);
                    }
                    ::std::result::Result::Err(__panic) => {
                        ::std::eprintln!(
                            "proptest shim: `{}` failed at case {}/{} with inputs:\n{}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
    )*};
}

/// Assert inside a property body (no early-return machinery in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Weighted or unweighted union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as f64, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1.0f64, $crate::strategy::boxed($strat))),+
        ])
    };
}
