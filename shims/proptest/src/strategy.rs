//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in heterogeneous unions ([`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Weighted union over same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(f64, Box<dyn Strategy<Value = T>>)>,
    total: f64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or total weight is not positive.
    pub fn new(arms: Vec<(f64, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: f64 = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            !arms.is_empty() && total > 0.0,
            "prop_oneof: no usable arms"
        );
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.unit_f64() * self.total;
        for (w, s) in &self.arms {
            if x < *w {
                return s.generate(rng);
            }
            x -= w;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything of type `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_in_bounds() {
        let mut rng = TestRng::for_test("strategy::ranges");
        for _ in 0..500 {
            let (a, b, c) = (0u8..3, 5usize..=7, -1.0f64..1.0).generate(&mut rng);
            assert!(a < 3);
            assert!((5..=7).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::for_test("strategy::map");
        let s = (0u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 10, 0);
        }
        assert_eq!(Just(9u8).generate(&mut rng), 9);
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::for_test("strategy::union");
        let u = Union::new(vec![(1.0, boxed(Just(0u8))), (9.0, boxed(Just(1u8)))]);
        let ones = (0..5000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 4000, "weighted arm hit only {ones}/5000");
    }
}
