//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based, see the `serde` shim) for the item shapes this
//! workspace actually uses: structs with named fields, tuple structs, and
//! enums with unit / tuple / struct variants — no generics, no lifetimes.
//! The only field attribute honored is `#[serde(skip)]` (omit on serialize,
//! `Default::default()` on deserialize). Anything outside that surface is a
//! compile error naming what is missing, so a future PR extends the shim
//! instead of silently mis-serializing.
//!
//! Implemented with hand-rolled token parsing because `syn`/`quote` are not
//! available offline. Codegen builds a source string and re-parses it, which
//! keeps the emission logic readable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: `None` name for tuple fields.
struct Field {
    name: Option<String>,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    shape: Shape,
}

/// The shape of a struct body or enum variant payload.
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

/// Parsed derive input.
struct Input {
    name: String,
    body: Body,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

/// Derive the shim `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .expect("generated Serialize parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derive the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .expect("generated Deserialize parses"),
        Err(e) => compile_error(&e),
    }
}

// ---------------------------------------------------------------- parsing

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn eat_attrs(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<bool, String> {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    return Err("expected [...] after #".to_string());
                };
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        let Some(TokenTree::Group(args)) = inner.get(1) else {
                            return Err("unsupported bare #[serde] attribute".to_string());
                        };
                        let args = args.stream().to_string();
                        if args.trim() == "skip" {
                            skip = true;
                        } else {
                            return Err(format!(
                                "serde shim derive: unsupported attribute #[serde({args})] — only #[serde(skip)] is implemented"
                            ));
                        }
                    }
                }
            }
            _ => return Ok(skip),
        }
    }
}

/// Skip `pub` / `pub(...)` visibility tokens.
fn eat_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens)?;
    eat_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: generic type `{name}` is not supported — add a manual impl or extend the shim"
        ));
    }
    let body = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Shape::Tuple(parse_tuple_fields(g.stream())?))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Shape::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => {
            return Err(format!(
                "serde shim derive: unsupported item kind `{other}`"
            ))
        }
    };
    Ok(Input { name, body })
}

/// Parse `name: Type, ...` — types are skipped token-wise (commas inside
/// `<...>` are nested via angle-depth tracking; parens/brackets arrive as
/// whole groups).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let skip = eat_attrs(&mut tokens)?;
        eat_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name: Some(name),
            skip,
        });
    }
}

/// Skip one type, stopping before a top-level `,` (consumed) or end of stream.
fn skip_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    for tok in tokens.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
    }
}

/// Parse tuple-struct / tuple-variant fields: only count and skip flags
/// matter.
fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let skip = eat_attrs(&mut tokens)?;
        eat_vis(&mut tokens);
        skip_type(&mut tokens);
        fields.push(Field { name: None, skip });
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            return Ok(variants);
        }
        eat_attrs(&mut tokens)?;
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream())?;
                tokens.next();
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, shape });
                return Ok(variants);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive: explicit discriminant on variant `{name}` is not supported"
                ));
            }
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found {other:?}"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Shape::Unit) => "::serde::value::Value::Null".to_string(),
        Body::Struct(Shape::Named(fields)) => ser_named("self.", name, fields),
        Body::Struct(Shape::Tuple(fields)) => {
            let parts: Vec<String> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.skip)
                .map(|(i, _)| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            ser_sequence(&parts)
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str({vname:?}.to_string()),"
                        ),
                        Shape::Tuple(fields) => {
                            let binds: Vec<String> =
                                (0..fields.len()).map(|i| format!("__f{i}")).collect();
                            let parts: Vec<String> = binds
                                .iter()
                                .zip(fields)
                                .filter(|(_, f)| !f.skip)
                                .map(|(b, _)| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Object(vec![({vname:?}.to_string(), {})]),",
                                binds.join(", "),
                                ser_sequence(&parts)
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| f.name.clone().expect("named field"))
                                .collect();
                            let inner = ser_named("", name, fields);
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::value::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}"
    )
}

/// Serialize a list of already-rendered element expressions: one element
/// stays bare (serde's newtype convention), several become an array.
fn ser_sequence(parts: &[String]) -> String {
    match parts {
        [] => "::serde::value::Value::Array(vec![])".to_string(),
        [single] => single.clone(),
        many => format!("::serde::value::Value::Array(vec![{}])", many.join(", ")),
    }
}

/// Serialize named fields into an object literal. `prefix` is `self.` for
/// structs and empty for matched enum bindings.
fn ser_named(prefix: &str, _ty: &str, fields: &[Field]) -> String {
    let pushes: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let fname = f.name.as_ref().expect("named field");
            format!("({fname:?}.to_string(), ::serde::Serialize::to_value(&{prefix}{fname}))")
        })
        .collect();
    format!("::serde::value::Value::Object(vec![{}])", pushes.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(Shape::Unit) => format!("Ok({name})"),
        Body::Struct(Shape::Named(fields)) => {
            format!("Ok({name} {{ {} }})", de_named_fields("__v", name, fields))
        }
        Body::Struct(Shape::Tuple(fields)) => de_tuple(name, name, fields, "__v"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("{vname:?} => return Ok({name}::{vname}),\n"));
                    }
                    Shape::Tuple(fields) => {
                        let expr = de_tuple(name, &format!("{name}::{vname}"), fields, "__payload");
                        tagged_arms.push_str(&format!("{vname:?} => return {expr},\n"));
                    }
                    Shape::Named(fields) => {
                        let inner = de_named_fields("__payload", name, fields);
                        tagged_arms.push_str(&format!(
                            "{vname:?} => return Ok({name}::{vname} {{ {inner} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::value::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{\n{unit_arms}\
                         __other => return Err(::serde::de::Error::unknown_variant({name:?}, __other)),\n\
                     }}\n\
                 }}\n\
                 let __fields = __v.as_object().ok_or_else(|| ::serde::de::Error::expected(\"enum tag\", __v))?;\n\
                 if __fields.len() != 1 {{\n\
                     return Err(::serde::de::Error::expected(\"single-key enum object\", __v));\n\
                 }}\n\
                 let (__tag, __payload) = (&__fields[0].0, &__fields[0].1);\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                     __other => Err(::serde::de::Error::unknown_variant({name:?}, __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}"
    )
}

/// Field initializers for a named-field struct or variant read from `src`.
fn de_named_fields(src: &str, ty: &str, fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = f.name.as_ref().expect("named field");
            if f.skip {
                format!("{fname}: ::core::default::Default::default()")
            } else {
                format!(
                    "{fname}: ::serde::Deserialize::from_value({src}.get({fname:?})\
                     .ok_or_else(|| ::serde::de::Error::missing_field({ty:?}, {fname:?}))?)?"
                )
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Build `Ok(Ctor(...))` reading tuple fields from value expression `src`.
fn de_tuple(_ty: &str, ctor: &str, fields: &[Field], src: &str) -> String {
    let live: Vec<usize> = fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.skip)
        .map(|(i, _)| i)
        .collect();
    match live.len() {
        0 => format!("Ok({ctor}())"),
        1 => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        "::core::default::Default::default()".to_string()
                    } else {
                        format!("::serde::Deserialize::from_value({src})?")
                    }
                })
                .collect();
            format!("Ok({ctor}({}))", inits.join(", "))
        }
        n => {
            let mut out = format!(
                "{{ let __items = {src}.as_array().ok_or_else(|| ::serde::de::Error::expected(\"array\", {src}))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::de::Error::expected(\"array of {n} elements\", {src})); }}\n"
            );
            let mut live_idx = 0usize;
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        "::core::default::Default::default()".to_string()
                    } else {
                        let expr =
                            format!("::serde::Deserialize::from_value(&__items[{live_idx}])?");
                        live_idx += 1;
                        expr
                    }
                })
                .collect();
            out.push_str(&format!("Ok({ctor}({})) }}", inits.join(", ")));
            out
        }
    }
}
