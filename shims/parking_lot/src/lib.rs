//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace patches `parking_lot` to this shim (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It wraps `std::sync` primitives and exposes the
//! parking_lot calling convention: `lock()` / `read()` / `write()` return
//! guards directly instead of `Result`s. A poisoned lock means a panic
//! already unwound while holding it; propagating the panic is the behavior
//! parking_lot itself exhibits (it has no poisoning), so we recover the
//! guard from the poison error.

use std::sync;
// Real parking_lot exports its guard types; the std guards play that role
// here (deref surface is identical for the usage in this workspace).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
