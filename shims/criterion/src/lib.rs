//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Provides just the API surface this workspace's benches use: [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a plain
//! wall-clock loop with mean/min reporting — no warm-up modelling, outlier
//! analysis, plots, or HTML reports.
//!
//! When the harness binary is run without `--bench` (e.g. `cargo test` runs
//! harness=false bench targets once), each benchmark executes a single
//! iteration so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim times the whole
/// setup+routine batch regardless of the variant; the variant only exists for
/// API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    /// None → run routines exactly once (test mode); Some → time for roughly
    /// this long.
    budget: Option<Duration>,
    /// Filled in by `iter`/`iter_batched` for the caller to report.
    result: Option<Sample>,
}

struct Sample {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        match self.budget {
            None => {
                black_box(routine());
                self.result = Some(Sample {
                    iters: 1,
                    total: Duration::ZERO,
                    min: Duration::ZERO,
                });
            }
            Some(budget) => {
                let mut iters = 0u64;
                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                // Warm-up: one untimed call.
                black_box(routine());
                while total < budget {
                    let t0 = Instant::now();
                    black_box(routine());
                    let dt = t0.elapsed();
                    total += dt;
                    min = min.min(dt);
                    iters += 1;
                    if iters >= 1_000_000 {
                        break;
                    }
                }
                self.result = Some(Sample { iters, total, min });
            }
        }
    }

    /// Run `routine` on fresh values from `setup`; only the routine is timed.
    pub fn iter_batched<S, I, R, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        match self.budget {
            None => {
                black_box(routine(setup()));
                self.result = Some(Sample {
                    iters: 1,
                    total: Duration::ZERO,
                    min: Duration::ZERO,
                });
            }
            Some(budget) => {
                let mut iters = 0u64;
                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                black_box(routine(setup()));
                while total < budget {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    let dt = t0.elapsed();
                    total += dt;
                    min = min.min(dt);
                    iters += 1;
                    if iters >= 1_000_000 {
                        break;
                    }
                }
                self.result = Some(Sample { iters, total, min });
            }
        }
    }
}

/// Top-level benchmark registry/configuration.
pub struct Criterion {
    measurement: Duration,
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness=false targets;
        // `cargo test` passes `--test-threads` style flags or nothing.
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                bench_mode = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion {
            measurement: Duration::from_secs(3),
            bench_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no sample-count model.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed call.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            budget: self.bench_mode.then_some(self.measurement),
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(s) if self.bench_mode && s.iters > 0 => {
                let mean = s.total / u32::try_from(s.iters).unwrap_or(u32::MAX).max(1);
                println!(
                    "{id:<40} {iters:>8} iters   mean {mean:>12?}   min {min:>12?}",
                    iters = s.iters,
                    min = s.min
                );
            }
            Some(_) => println!("{id:<40} ok (1 iter, test mode)"),
            None => println!("{id:<40} skipped (no routine)"),
        }
        self
    }

    /// Open a named group of related benchmarks. Benchmark ids inside the
    /// group are prefixed with `name/`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Called by `criterion_main!`; nothing to flush in the shim.
    pub fn final_summary(&mut self) {}
}

/// Identifier for one parameterised benchmark within a group, rendered as
/// `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combine a function name with a parameter value.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identify a benchmark by its parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a `name/` prefix; created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Close the group. The shim has no per-group state to flush.
    pub fn finish(self) {}
}

/// Define a benchmark group. Supports both the simple form
/// `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the `main` for a harness=false bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            measurement: Duration::from_secs(1),
            bench_mode: false,
            filter: None,
        };
        let mut calls = 0;
        c.bench_function("shim/once", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn iter_batched_times_routine() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            bench_mode: true,
            filter: None,
        };
        let mut routine_calls = 0u64;
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                || 21u64,
                |x| {
                    routine_calls += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            );
        });
        // warm-up call + at least one timed call
        assert!(routine_calls >= 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            measurement: Duration::from_secs(1),
            bench_mode: false,
            filter: Some("other".into()),
        };
        let mut calls = 0;
        c.bench_function("shim/filtered", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }
}
