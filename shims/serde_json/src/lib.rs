//! Offline stand-in for `serde_json`, paired with the `serde` shim.
//!
//! Renders the shim's [`serde::value::Value`] tree to JSON text and parses
//! JSON text back. Numbers parse to `Int` when they are integral without
//! exponent/fraction syntax, `Float` otherwise; non-finite floats render as
//! `null` (matching real serde_json) and `null` deserializes into `f64` as
//! `+∞` (the contract `er-rules::io` documents for open range bounds).

pub use serde::value::Value;

use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn parse(pos: usize, msg: impl Into<String>) -> Self {
        Error(format!("JSON parse error at byte {pos}: {}", msg.into()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to human-indented JSON (two spaces, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip float formatting; ensure the
                // token re-parses as a float, not an integer.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            '[',
            ']',
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            '{',
            '}',
            |out, (k, fv), indent, depth| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth);
            },
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse(self.pos, "expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse(start, "invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::parse(self.pos, "lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(
                                c.ok_or_else(|| Error::parse(self.pos, "invalid code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos,
                                format!("invalid escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                _ => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::parse(self.pos, "truncated \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| Error::parse(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(start, format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_tokens_always_reparse_as_floats() {
        // 2.0 renders with a ".0" so the document stays typed.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(from_str::<f64>("null").unwrap(), f64::INFINITY);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "he said \"hi\",\nthen\tleft\\ \u{1F980} \u{1}";
        let json = to_string(&nasty.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), nasty);
        // Explicit surrogate-pair escape decodes.
        assert_eq!(
            from_str::<String>("\"\\ud83e\\udd80\"").unwrap(),
            "\u{1F980}"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b,c".into())];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_string_pretty(&vec![1u8, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("").is_err());
    }
}
