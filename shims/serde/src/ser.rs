//! Serialization into the [`Value`] tree.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Render `self` as a document [`Value`].
pub trait Serialize {
    /// Produce the value-tree form of `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                i64::try_from(v).map(Value::Int).unwrap_or(Value::UInt(v))
            }
        }
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // JSON has no Infinity/NaN literal; `null` round-trips back to
        // infinity (see `er-rules::io` range-bound contract).
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so rendered documents are deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(fields)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
