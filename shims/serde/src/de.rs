//! Deserialization from the [`Value`] tree.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

/// Deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing-field error for struct `ty`.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` of `{ty}`"))
    }

    /// An unknown-variant error for enum `ty`.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` of `{ty}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Reconstruct `Self` from a document [`Value`].
pub trait Deserialize: Sized {
    /// Parse `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // Inverse of the non-finite → null encoding in `ser`.
            Value::Null => Ok(f64::INFINITY),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", v)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

macro_rules! impl_de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:literal))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                if items.len() != $len {
                    return Err(Error(format!(
                        "expected array of length {}, found length {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_de_tuple! {
    (A: 0 ; 1)
    (A: 0, B: 1 ; 2)
    (A: 0, B: 1, C: 2 ; 3)
    (A: 0, B: 1, C: 2, D: 3 ; 4)
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let fields = v.as_object().ok_or_else(|| Error::expected("object", v))?;
        fields
            .iter()
            .map(|(k, fv)| Ok((k.clone(), V::from_value(fv)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serialize;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn infinity_round_trips_via_null() {
        let v = f64::INFINITY.to_value();
        assert_eq!(v, Value::Null);
        assert_eq!(f64::from_value(&v).unwrap(), f64::INFINITY);
    }

    #[test]
    fn option_and_containers_round_trip() {
        let x: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&x.to_value()).unwrap(), None);
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        assert_eq!(
            Vec::<(usize, String)>::from_value(&v.to_value()).unwrap(),
            v
        );
        let a = Arc::new(vec![3u32, 4]);
        assert_eq!(Arc::<Vec<u32>>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(String::from_value(&Value::Int(1)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Null).is_err());
    }
}
