//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `serde` (and `serde_derive` / `serde_json`) to these shims. Instead of
//! reproducing serde's visitor architecture, this shim serializes through an
//! owned JSON-like [`value::Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`value::Value`];
//! * [`Deserialize`] reconstructs `Self` from a [`value::Value`];
//! * `serde_json` (the sibling shim) renders that tree to/from JSON text.
//!
//! The derive macros in `serde_derive` generate externally-tagged encodings
//! matching real serde's defaults (struct → object, unit variant → string,
//! newtype variant → `{"Name": value}`, struct variant → `{"Name": {...}}`),
//! so documents written by this shim look like documents written by the real
//! stack. Non-finite floats serialize to `null` and deserialize back as
//! `f64::INFINITY`, which is the contract `er-rules::io` documents for the
//! open-ended range bound.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Error};
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
