//! The owned value tree both shim traits plug into.

/// A JSON-shaped document value.
///
/// Objects preserve insertion order (field declaration order for derived
/// structs), which keeps rendered documents stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer field in this workspace).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
