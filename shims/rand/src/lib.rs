//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this shim. It provides the API subset the repo uses — `Rng`
//! (`gen_range`, `gen_bool`, `gen`), `SeedableRng::seed_from_u64`,
//! `rngs::{StdRng, SmallRng}`, `seq::SliceRandom` (`shuffle`, `choose`) and
//! `distributions::{Distribution, WeightedIndex, Standard}` — backed by the
//! xoshiro256++ generator seeded through SplitMix64, the same construction
//! the real `rand` uses for seeding. Streams are deterministic per seed but
//! NOT bit-identical to upstream `rand`; all in-repo consumers only rely on
//! seed-determinism, never on specific streams.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A deterministic random number generator seedable from integers.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from `range` (half-open or inclusive; ints and floats).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to a uniform `f32` in `[0, 1)` (24-bit mantissa).
#[inline]
pub(crate) fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Ranges that can produce a uniform sample, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Element types `gen_range` can sample, mirroring `SampleUniform`. The
/// blanket [`SampleRange`] impls below hang off this trait so type inference
/// ties the range's element type to `gen_range`'s return type exactly like
/// the real crate (e.g. `rng.gen_range(0.0..1.0) < x_f32` infers `f32`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty integer range"
                );
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                // Modulo bias is < 2^-64 for every span used in this repo;
                // acceptable for simulation workloads, not for cryptography.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range: empty f32 range");
        lo + (hi - lo) * unit_f32(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0 - f64::EPSILON)));
    }

    #[test]
    fn gen_bool_rate_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
