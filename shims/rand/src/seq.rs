//! Sequence sampling helpers mirroring `rand::seq`.

use crate::Rng;

/// Slice extension trait: in-place shuffle and uniform element choice.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((rng.next_u64() % self.len() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }
}
