//! Distributions mirroring `rand::distributions`.

use crate::{unit_f32, unit_f64, Rng};
use std::marker::PhantomData;

/// Types that can produce samples of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform bits for ints, `[0, 1)` for
/// floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng.next_u64())
    }
}

/// Error building a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no items to sample from"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sample indices `0..n` proportionally to the given weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex<X> {
    cumulative: Vec<f64>,
    _marker: PhantomData<X>,
}

impl<X: Into<f64> + Copy> WeightedIndex<X> {
    /// Build from an iterator of non-negative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator<Item = X>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex {
            cumulative,
            _marker: PhantomData,
        })
    }
}

impl<X> Distribution<usize> for WeightedIndex<X> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x = unit_f64(rng.next_u64()) * total;
        // First cumulative weight strictly greater than x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let w = WeightedIndex::new([1.0f64, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn weighted_index_rejects_bad_inputs() {
        assert_eq!(
            WeightedIndex::<f64>::new([]).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([0.0f64, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([-1.0f64]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }
}
